//! The TPDE back-end for the LLVM-IR-like module.
//!
//! The instruction compiler is architecture-independent: it maps IR
//! instructions onto the snippet encoders of [`tpde_snippets::SnippetEmitter`]
//! and only uses the framework for calls, returns and branch bookkeeping,
//! mirroring §5.1.2 of the paper (calls/returns/branches and compare+branch
//! fusion are the only parts that are not expressed through snippets).

use crate::adapter::{block_ref, value_ref, LlvmAdapter};
use crate::ir::{Inst, Module, Type};
use tpde_core::adapter::{InstRef, IrAdapter};
use tpde_core::codebuf::SymbolBinding;
use tpde_core::codegen::{
    CallTarget, CodeGen, CompileOptions, CompiledModule, FuncCodeGen, InstCompiler,
};
use tpde_core::error::Result;
use tpde_core::parallel::{ParallelDriver, WorkerPool};
use tpde_core::target::Target;
use tpde_enc::{A64Target, X64Target};
use tpde_snippets::{AsmOperand, SnippetEmitter};

/// The instruction compiler for the LLVM-IR-like IR, generic over the target
/// through the snippet-encoder abstraction.
///
/// Holds a reusable call-argument buffer and a per-module callee symbol
/// cache so compiling a call instruction does not allocate or re-intern the
/// callee name in steady state.
#[derive(Default)]
pub struct LlvmInstCompiler {
    arg_refs: Vec<tpde_core::codegen::ValuePartRef>,
    /// Cached `SymbolId` per IR function index, filled on first call. The
    /// ids belong to one module's `CodeBuffer`, so the cache is tagged with
    /// the module's address and dropped when a different module shows up.
    callee_syms: Vec<Option<tpde_core::codebuf::SymbolId>>,
    callee_syms_module: usize,
}

impl LlvmInstCompiler {
    fn operand<'m, T: SnippetEmitter>(
        cg: &mut FuncCodeGen<'_, LlvmAdapter<'m>, T>,
        v: crate::ir::Value,
    ) -> Result<AsmOperand> {
        Ok(AsmOperand::Val(cg.val_ref(value_ref(v), 0)?))
    }
}

impl<'m, T: SnippetEmitter> InstCompiler<LlvmAdapter<'m>, T> for LlvmInstCompiler {
    fn compile_inst(
        &mut self,
        cg: &mut FuncCodeGen<'_, LlvmAdapter<'m>, T>,
        inst: InstRef,
    ) -> Result<()> {
        // `inst()` borrows from the module ('m), not from the adapter
        // borrow, so no clone is needed before mutating `cg`.
        let adapter = cg.adapter;
        let ir: &'m Inst = adapter.inst(inst);
        match *ir {
            Inst::Bin {
                op,
                ty,
                res,
                lhs,
                rhs,
            } => {
                let l = Self::operand(cg, lhs)?;
                let r = Self::operand(cg, rhs)?;
                T::enc_bin(cg, op, ty.size(), (value_ref(res), 0), &l, &r)
            }
            Inst::Div {
                signed,
                rem,
                ty,
                res,
                lhs,
                rhs,
            } => {
                let l = Self::operand(cg, lhs)?;
                let r = Self::operand(cg, rhs)?;
                T::enc_divrem(cg, signed, rem, ty.size(), (value_ref(res), 0), &l, &r)
            }
            Inst::Shift {
                kind,
                ty,
                res,
                lhs,
                rhs,
            } => {
                let l = Self::operand(cg, lhs)?;
                let r = Self::operand(cg, rhs)?;
                T::enc_shift(cg, kind, ty.size(), (value_ref(res), 0), &l, &r)
            }
            Inst::Icmp {
                cc,
                ty,
                res,
                lhs,
                rhs,
            } => {
                // compare + branch fusion (§3.4.4): if the next instruction is
                // a conditional branch on this result and this is its only
                // use, emit the fused form and skip the branch.
                if cg.options().fusion {
                    if let Some(next) = cg.adapter.next_inst_in_block(inst) {
                        if let Inst::CondBr {
                            cond,
                            if_true,
                            if_false,
                        } = cg.adapter.inst(next)
                        {
                            if *cond == res && cg.adapter.count_uses(res) == 1 {
                                let (it, if_) = (*if_true, *if_false);
                                let l = Self::operand(cg, lhs)?;
                                let r = Self::operand(cg, rhs)?;
                                cg.mark_fused(next);
                                return T::enc_icmp_branch(
                                    cg,
                                    cc,
                                    ty.size(),
                                    &l,
                                    &r,
                                    block_ref(it),
                                    block_ref(if_),
                                );
                            }
                        }
                    }
                }
                let l = Self::operand(cg, lhs)?;
                let r = Self::operand(cg, rhs)?;
                T::enc_icmp(cg, cc, ty.size(), (value_ref(res), 0), &l, &r)
            }
            Inst::Fbin {
                op,
                ty,
                res,
                lhs,
                rhs,
            } => {
                let l = Self::operand(cg, lhs)?;
                let r = Self::operand(cg, rhs)?;
                T::enc_fbin(cg, op, ty.size(), (value_ref(res), 0), &l, &r)
            }
            Inst::Fcmp {
                cc,
                ty,
                res,
                lhs,
                rhs,
            } => {
                let l = Self::operand(cg, lhs)?;
                let r = Self::operand(cg, rhs)?;
                T::enc_fcmp(cg, cc, ty.size(), (value_ref(res), 0), &l, &r)
            }
            Inst::Fneg { ty, res, v } => {
                let s = Self::operand(cg, v)?;
                T::enc_fneg(cg, ty.size(), (value_ref(res), 0), &s)
            }
            Inst::Load { ty, res, addr, off } => {
                let a = Self::operand(cg, addr)?;
                T::enc_load(
                    cg,
                    ty.size(),
                    // The IR has no sign-extending loads; sub-64-bit loads
                    // always zero-extend.
                    false,
                    ty.is_fp(),
                    (value_ref(res), 0),
                    &a,
                    off,
                )
            }
            Inst::Store {
                ty,
                addr,
                off,
                value,
            } => {
                let a = Self::operand(cg, addr)?;
                let v = Self::operand(cg, value)?;
                T::enc_store(cg, ty.size(), ty.is_fp(), &a, off, &v)
            }
            Inst::Gep {
                res,
                base,
                index,
                scale,
                off,
            } => {
                // res = base + index*scale + off, computed with integer snippets
                let b = Self::operand(cg, base)?;
                match index {
                    None => {
                        let o = AsmOperand::Imm(off as u64);
                        T::enc_bin(cg, crate::ir::BinOp::Add, 8, (value_ref(res), 0), &b, &o)
                    }
                    Some(i) => {
                        let iv = Self::operand(cg, i)?;
                        // res = index * scale; res = res + base; res = res + off
                        // The intermediate references to `res` are built
                        // directly (not via val_ref) so they do not count as
                        // additional uses of the result.
                        let res_ref = |cg: &FuncCodeGen<'_, LlvmAdapter<'m>, T>| {
                            tpde_core::codegen::ValuePartRef {
                                val: value_ref(res),
                                part: 0,
                                bank: cg.adapter.val_part_bank(value_ref(res), 0),
                                size: 8,
                                is_const: false,
                                const_val: 0,
                            }
                        };
                        T::enc_bin(
                            cg,
                            crate::ir::BinOp::Mul,
                            8,
                            (value_ref(res), 0),
                            &iv,
                            &AsmOperand::Imm(scale as u64),
                        )?;
                        let partial = AsmOperand::Val(res_ref(cg));
                        T::enc_bin(
                            cg,
                            crate::ir::BinOp::Add,
                            8,
                            (value_ref(res), 0),
                            &partial,
                            &b,
                        )?;
                        if off != 0 {
                            let partial = AsmOperand::Val(res_ref(cg));
                            T::enc_bin(
                                cg,
                                crate::ir::BinOp::Add,
                                8,
                                (value_ref(res), 0),
                                &partial,
                                &AsmOperand::Imm(off as u64),
                            )?;
                        }
                        Ok(())
                    }
                }
            }
            Inst::Cast {
                signed,
                from,
                to,
                res,
                v,
            } => {
                let s = Self::operand(cg, v)?;
                T::enc_ext(cg, signed, from.size(), to.size(), (value_ref(res), 0), &s)
            }
            Inst::IntToFp { from, to, res, v } => {
                let s = Self::operand(cg, v)?;
                T::enc_int_to_fp(cg, from.size(), to.size(), (value_ref(res), 0), &s)
            }
            Inst::FpToInt { from, to, res, v } => {
                let s = Self::operand(cg, v)?;
                T::enc_fp_to_int(cg, from.size(), to.size(), (value_ref(res), 0), &s)
            }
            Inst::FpConvert { from, to, res, v } => {
                let s = Self::operand(cg, v)?;
                T::enc_fp_convert(cg, from.size(), to.size(), (value_ref(res), 0), &s)
            }
            Inst::Select {
                ty,
                res,
                cond,
                tval,
                fval,
            } => {
                let c = Self::operand(cg, cond)?;
                let t = Self::operand(cg, tval)?;
                let f = Self::operand(cg, fval)?;
                T::enc_select(cg, ty.size(), (value_ref(res), 0), &c, &t, &f)
            }
            Inst::Call {
                callee,
                res,
                ret_ty,
                ref args,
            } => {
                let module_tag = adapter.module as *const Module as usize;
                if self.callee_syms_module != module_tag {
                    self.callee_syms.clear();
                    self.callee_syms_module = module_tag;
                }
                if self.callee_syms.len() <= callee.0 as usize {
                    self.callee_syms.resize(adapter.module.funcs.len(), None);
                }
                let sym = match self.callee_syms[callee.0 as usize] {
                    Some(sym) => sym,
                    None => {
                        let f = &adapter.module.funcs[callee.0 as usize];
                        let binding = if f.internal {
                            SymbolBinding::Local
                        } else {
                            SymbolBinding::Global
                        };
                        let sym = cg.buf.declare_symbol(&f.name, binding, true);
                        self.callee_syms[callee.0 as usize] = Some(sym);
                        sym
                    }
                };
                self.arg_refs.clear();
                for a in args {
                    let r = cg.val_ref(value_ref(*a), 0)?;
                    self.arg_refs.push(r);
                }
                let ret_slot;
                let rets: &[_] = match res {
                    Some(r) if ret_ty != Type::Void => {
                        ret_slot = [(value_ref(r), 0)];
                        &ret_slot
                    }
                    _ => &[],
                };
                cg.emit_call(CallTarget::Sym(sym), &self.arg_refs, rets, None)
            }
            Inst::Br { target } => T::enc_jump(cg, block_ref(target)),
            Inst::CondBr {
                cond,
                if_true,
                if_false,
            } => {
                let c = Self::operand(cg, cond)?;
                T::enc_branch_nonzero(cg, 4, &c, false, block_ref(if_true), block_ref(if_false))
            }
            Inst::Ret { value } => match value {
                Some(v) => {
                    let p = cg.val_ref(value_ref(v), 0)?;
                    cg.emit_return(&[p])
                }
                None => cg.emit_return_void(),
            },
        }
    }
}

/// Compiles a module with the TPDE back-end for x86-64.
pub fn compile_x64(module: &Module, opts: &CompileOptions) -> Result<CompiledModule> {
    compile_with_target(module, X64Target::new(), opts)
}

/// Compiles a module with the TPDE back-end for AArch64.
pub fn compile_a64(module: &Module, opts: &CompileOptions) -> Result<CompiledModule> {
    compile_with_target(module, A64Target::new(), opts)
}

/// Compiles a module with the TPDE back-end for an arbitrary target that has
/// snippet encoders.
pub fn compile_with_target<T: Target + SnippetEmitter>(
    module: &Module,
    target: T,
    opts: &CompileOptions,
) -> Result<CompiledModule> {
    let mut adapter = LlvmAdapter::new(module);
    let cg = CodeGen::new(target, opts.clone());
    cg.compile_module(&mut adapter, &mut LlvmInstCompiler::default())
}

/// Like [`compile_with_target`], but reuses the given compile session's
/// working memory. Drivers compiling many modules (JIT-style workloads)
/// keep one session so the steady-state compile loop is allocation-free.
pub fn compile_with_session<T: Target + SnippetEmitter>(
    module: &Module,
    target: T,
    opts: &CompileOptions,
    session: &mut tpde_core::codegen::CompileSession,
) -> Result<CompiledModule> {
    let mut adapter = LlvmAdapter::new(module);
    let cg = CodeGen::new(target, opts.clone());
    cg.compile_module_with(session, &mut adapter, &mut LlvmInstCompiler::default())
}

/// Compiles a module for x86-64 with functions sharded across `threads`
/// worker threads. The output is byte-identical to [`compile_x64`] for any
/// thread count (see [`tpde_core::parallel`] for the determinism contract).
pub fn compile_x64_parallel(
    module: &Module,
    opts: &CompileOptions,
    threads: usize,
) -> Result<CompiledModule> {
    compile_with_target_parallel(module, X64Target::new(), opts, threads)
}

/// Compiles a module for AArch64 with functions sharded across `threads`
/// worker threads; byte-identical to [`compile_a64`].
pub fn compile_a64_parallel(
    module: &Module,
    opts: &CompileOptions,
    threads: usize,
) -> Result<CompiledModule> {
    compile_with_target_parallel(module, A64Target::new(), opts, threads)
}

/// Parallel variant of [`compile_with_target`]: every worker owns a full
/// compile session, an [`LlvmAdapter`] that pre-indexes functions
/// independently, and its own instruction compiler (so the per-module
/// callee-symbol cache is worker-local).
pub fn compile_with_target_parallel<T: Target + SnippetEmitter + Sync>(
    module: &Module,
    target: T,
    opts: &CompileOptions,
    threads: usize,
) -> Result<CompiledModule> {
    let cg = CodeGen::new(target, opts.clone());
    ParallelDriver::new(threads).compile_module(
        &cg,
        || LlvmAdapter::new(module),
        LlvmInstCompiler::default,
    )
}

/// Parallel variant of [`compile_with_session`]: reuses the pool's worker
/// sessions so the steady-state loop of every worker is allocation-free
/// across modules.
pub fn compile_with_pool<T: Target + SnippetEmitter + Sync>(
    module: &Module,
    target: T,
    opts: &CompileOptions,
    threads: usize,
    pool: &mut WorkerPool,
) -> Result<CompiledModule> {
    let cg = CodeGen::new(target, opts.clone());
    ParallelDriver::new(threads).compile_module_with(
        pool,
        &cg,
        || LlvmAdapter::new(module),
        LlvmInstCompiler::default,
    )
}
