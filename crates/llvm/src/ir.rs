//! An LLVM-IR-like SSA intermediate representation.
//!
//! This is the stand-in for LLVM-IR in the reproduction: a strict-SSA,
//! typed, phi-based IR with the constructs that Clang-generated baseline
//! code uses (integer/float arithmetic, comparisons, loads/stores, static
//! allocas, calls, branches, phis, select, conversions). Values are numbered
//! densely per function at construction time, which is exactly what the TPDE
//! IR adapter needs.

use std::collections::HashMap;

/// Value types.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Type {
    Void,
    I1,
    I8,
    I16,
    I32,
    I64,
    Ptr,
    F32,
    F64,
}

impl Type {
    /// Size of the type in bytes (0 for void).
    pub fn size(self) -> u32 {
        match self {
            Type::Void => 0,
            Type::I1 | Type::I8 => 1,
            Type::I16 => 2,
            Type::I32 | Type::F32 => 4,
            Type::I64 | Type::Ptr | Type::F64 => 8,
        }
    }

    /// Whether the type lives in the floating-point register bank.
    pub fn is_fp(self) -> bool {
        matches!(self, Type::F32 | Type::F64)
    }
}

/// A value id (dense per function).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Value(pub u32);

/// A basic-block id (dense per function).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Block(pub u32);

/// A function id (dense per module).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Integer binary operations.
pub use tpde_snippets::BinOp;
/// Floating point binary operations.
pub use tpde_snippets::FBinOp;
/// Floating point comparison predicates.
pub use tpde_snippets::FCmp;
/// Integer comparison predicates.
pub use tpde_snippets::ICmp;
/// Shift kinds.
pub use tpde_snippets::ShiftKind;

/// An instruction. Every value-producing instruction stores its result id.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Inst {
    /// Integer binary operation.
    Bin {
        op: BinOp,
        ty: Type,
        res: Value,
        lhs: Value,
        rhs: Value,
    },
    /// Integer division / remainder.
    Div {
        signed: bool,
        rem: bool,
        ty: Type,
        res: Value,
        lhs: Value,
        rhs: Value,
    },
    /// Shift.
    Shift {
        kind: ShiftKind,
        ty: Type,
        res: Value,
        lhs: Value,
        rhs: Value,
    },
    /// Integer comparison (result is `i1`).
    Icmp {
        cc: ICmp,
        ty: Type,
        res: Value,
        lhs: Value,
        rhs: Value,
    },
    /// FP binary operation.
    Fbin {
        op: FBinOp,
        ty: Type,
        res: Value,
        lhs: Value,
        rhs: Value,
    },
    /// FP comparison (result is `i1`).
    Fcmp {
        cc: FCmp,
        ty: Type,
        res: Value,
        lhs: Value,
        rhs: Value,
    },
    /// FP negation.
    Fneg { ty: Type, res: Value, v: Value },
    /// Load `ty` from `[addr + off]`.
    Load {
        ty: Type,
        res: Value,
        addr: Value,
        off: i32,
    },
    /// Store `value` (of type `ty`) to `[addr + off]`.
    Store {
        ty: Type,
        addr: Value,
        off: i32,
        value: Value,
    },
    /// Pointer arithmetic: `res = base + index * scale + off` (a simplified GEP).
    Gep {
        res: Value,
        base: Value,
        index: Option<Value>,
        scale: u32,
        off: i64,
    },
    /// Integer extension / truncation.
    Cast {
        signed: bool,
        from: Type,
        to: Type,
        res: Value,
        v: Value,
    },
    /// Signed int -> FP.
    IntToFp {
        from: Type,
        to: Type,
        res: Value,
        v: Value,
    },
    /// FP -> signed int.
    FpToInt {
        from: Type,
        to: Type,
        res: Value,
        v: Value,
    },
    /// f32 <-> f64.
    FpConvert {
        from: Type,
        to: Type,
        res: Value,
        v: Value,
    },
    /// Select.
    Select {
        ty: Type,
        res: Value,
        cond: Value,
        tval: Value,
        fval: Value,
    },
    /// Direct call. `res` is `None` for void calls.
    Call {
        callee: FuncId,
        res: Option<Value>,
        ret_ty: Type,
        args: Vec<Value>,
    },
    /// Unconditional branch.
    Br { target: Block },
    /// Conditional branch on an `i1`/integer value.
    CondBr {
        cond: Value,
        if_true: Block,
        if_false: Block,
    },
    /// Return.
    Ret { value: Option<Value> },
}

impl Inst {
    /// The result value defined by this instruction, if any.
    pub fn result(&self) -> Option<Value> {
        match self {
            Inst::Bin { res, .. }
            | Inst::Div { res, .. }
            | Inst::Shift { res, .. }
            | Inst::Icmp { res, .. }
            | Inst::Fbin { res, .. }
            | Inst::Fcmp { res, .. }
            | Inst::Fneg { res, .. }
            | Inst::Load { res, .. }
            | Inst::Gep { res, .. }
            | Inst::Cast { res, .. }
            | Inst::IntToFp { res, .. }
            | Inst::FpToInt { res, .. }
            | Inst::FpConvert { res, .. }
            | Inst::Select { res, .. } => Some(*res),
            Inst::Call { res, .. } => *res,
            _ => None,
        }
    }

    /// Calls `f` for every operand value read by this instruction, in
    /// order. Allocation-free variant of [`Inst::operands`] for hot paths
    /// (the adapter's per-function indexing).
    pub fn visit_operands(&self, mut f: impl FnMut(Value)) {
        match self {
            Inst::Bin { lhs, rhs, .. }
            | Inst::Div { lhs, rhs, .. }
            | Inst::Shift { lhs, rhs, .. }
            | Inst::Icmp { lhs, rhs, .. }
            | Inst::Fbin { lhs, rhs, .. }
            | Inst::Fcmp { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Inst::Fneg { v, .. }
            | Inst::Cast { v, .. }
            | Inst::IntToFp { v, .. }
            | Inst::FpToInt { v, .. }
            | Inst::FpConvert { v, .. } => f(*v),
            Inst::Load { addr, .. } => f(*addr),
            Inst::Store { addr, value, .. } => {
                f(*addr);
                f(*value);
            }
            Inst::Gep { base, index, .. } => {
                f(*base);
                if let Some(i) = index {
                    f(*i);
                }
            }
            Inst::Select {
                cond, tval, fval, ..
            } => {
                f(*cond);
                f(*tval);
                f(*fval);
            }
            Inst::Call { args, .. } => args.iter().for_each(|a| f(*a)),
            Inst::CondBr { cond, .. } => f(*cond),
            Inst::Ret { value } => {
                if let Some(v) = value {
                    f(*v);
                }
            }
            Inst::Br { .. } => {}
        }
    }

    /// Calls `f` with a mutable reference to every operand value read by
    /// this instruction, in the same order as [`Inst::visit_operands`].
    /// Used by IR-rewriting tools (the fuzzer's mutator and the test-case
    /// minimizer) to redirect uses without matching on every variant.
    pub fn visit_operands_mut(&mut self, mut f: impl FnMut(&mut Value)) {
        match self {
            Inst::Bin { lhs, rhs, .. }
            | Inst::Div { lhs, rhs, .. }
            | Inst::Shift { lhs, rhs, .. }
            | Inst::Icmp { lhs, rhs, .. }
            | Inst::Fbin { lhs, rhs, .. }
            | Inst::Fcmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Inst::Fneg { v, .. }
            | Inst::Cast { v, .. }
            | Inst::IntToFp { v, .. }
            | Inst::FpToInt { v, .. }
            | Inst::FpConvert { v, .. } => f(v),
            Inst::Load { addr, .. } => f(addr),
            Inst::Store { addr, value, .. } => {
                f(addr);
                f(value);
            }
            Inst::Gep { base, index, .. } => {
                f(base);
                if let Some(i) = index {
                    f(i);
                }
            }
            Inst::Select {
                cond, tval, fval, ..
            } => {
                f(cond);
                f(tval);
                f(fval);
            }
            Inst::Call { args, .. } => args.iter_mut().for_each(f),
            Inst::CondBr { cond, .. } => f(cond),
            Inst::Ret { value } => {
                if let Some(v) = value {
                    f(v);
                }
            }
            Inst::Br { .. } => {}
        }
    }

    /// Calls `f` for every successor block if this is a terminator.
    /// Allocation-free variant of [`Inst::successors`].
    pub fn visit_successors(&self, mut f: impl FnMut(Block)) {
        match self {
            Inst::Br { target } => f(*target),
            Inst::CondBr {
                if_true, if_false, ..
            } => {
                f(*if_true);
                f(*if_false);
            }
            _ => {}
        }
    }

    /// The operand values read by this instruction.
    /// Convenience wrapper over [`Inst::visit_operands`] (the single source
    /// of truth for the operand list).
    pub fn operands(&self) -> Vec<Value> {
        let mut out = Vec::new();
        self.visit_operands(|v| out.push(v));
        out
    }

    /// Successor blocks if this is a terminator.
    /// Convenience wrapper over [`Inst::visit_successors`].
    pub fn successors(&self) -> Vec<Block> {
        let mut out = Vec::new();
        self.visit_successors(|b| out.push(b));
        out
    }

    /// Whether this is a terminator instruction.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Inst::Br { .. } | Inst::CondBr { .. } | Inst::Ret { .. }
        )
    }
}

/// A phi node.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Phi {
    /// The value defined by the phi.
    pub res: Value,
    /// The phi's type.
    pub ty: Type,
    /// Incoming `(block, value)` pairs.
    pub incoming: Vec<(Block, Value)>,
}

/// One basic block.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct BlockData {
    /// Phi nodes at the start of the block.
    pub phis: Vec<Phi>,
    /// Instructions, ending with a terminator.
    pub insts: Vec<Inst>,
}

/// How a value is defined (used for type/constant queries).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ValueDef {
    /// Function argument `n`.
    Arg(u32),
    /// An integer/FP constant with the given bit pattern.
    Const(u64),
    /// Result of an instruction or phi.
    Inst,
    /// Address of the static stack slot with the given index.
    StackSlot(u32),
}

/// Per-value metadata.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ValueInfo {
    /// The value's type.
    pub ty: Type,
    /// How the value is defined.
    pub def: ValueDef,
}

/// A function.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
    /// Whether this is only a declaration (external function).
    pub is_decl: bool,
    /// Whether the symbol is internal to the module.
    pub internal: bool,
    /// Static stack variables: `(size, align)`.
    pub stack_slots: Vec<(u32, u32)>,
    /// Values of the stack-slot addresses, same order as `stack_slots`.
    pub stack_slot_values: Vec<Value>,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<BlockData>,
    /// Per-value metadata, indexed by value id.
    pub values: Vec<ValueInfo>,
}

impl Function {
    /// Number of values in the function.
    pub fn value_count(&self) -> usize {
        self.values.len()
    }

    /// Type of a value.
    pub fn value_type(&self, v: Value) -> Type {
        self.values[v.0 as usize].ty
    }

    /// Total number of instructions (for statistics).
    pub fn inst_count(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.insts.len() + b.phis.len())
            .sum()
    }

    /// Writes a human-readable listing of the function (used by the fuzzer
    /// to print reproducible `(seed, shrunken IR)` artifacts).
    fn dump(&self, out: &mut String) {
        use std::fmt::Write;
        let params = self
            .params
            .iter()
            .map(|t| format!("{t:?}"))
            .collect::<Vec<_>>()
            .join(", ");
        if self.is_decl {
            let _ = writeln!(out, "declare @{}({}) -> {:?}", self.name, params, self.ret);
            return;
        }
        let _ = writeln!(out, "func @{}({}) -> {:?} {{", self.name, params, self.ret);
        for (i, v) in self.values.iter().enumerate() {
            match v.def {
                ValueDef::Const(bits) => {
                    let _ = writeln!(out, "  v{i} = const.{:?} {:#x}", v.ty, bits);
                }
                ValueDef::StackSlot(s) => {
                    let (size, align) = self.stack_slots[s as usize];
                    let _ = writeln!(out, "  v{i} = slot{s} (size {size}, align {align})");
                }
                _ => {}
            }
        }
        for (bi, block) in self.blocks.iter().enumerate() {
            let _ = writeln!(out, "b{bi}:");
            for phi in &block.phis {
                let inc = phi
                    .incoming
                    .iter()
                    .map(|(b, v)| format!("[b{}, v{}]", b.0, v.0))
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(out, "  v{} = phi.{:?} {}", phi.res.0, phi.ty, inc);
            }
            for inst in &block.insts {
                let _ = writeln!(out, "  {inst:?}");
            }
        }
        let _ = writeln!(out, "}}");
    }
}

/// A module: a set of functions.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// All functions (definitions and declarations).
    pub funcs: Vec<Function>,
    name_map: HashMap<String, FuncId>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Adds a function and returns its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.name_map.insert(f.name.clone(), id);
        self.funcs.push(f);
        id
    }

    /// Declares an external function.
    pub fn declare(&mut self, name: &str, params: Vec<Type>, ret: Type) -> FuncId {
        if let Some(id) = self.name_map.get(name) {
            return *id;
        }
        self.add_function(Function {
            name: name.to_string(),
            params,
            ret,
            is_decl: true,
            internal: false,
            stack_slots: Vec::new(),
            stack_slot_values: Vec::new(),
            blocks: Vec::new(),
            values: Vec::new(),
        })
    }

    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.name_map.get(name).copied()
    }

    /// Total number of instructions in the module.
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(|f| f.inst_count()).sum()
    }

    /// Human-readable listing of the whole module — the format of the
    /// fuzzer's `(seed, shrunken IR)` reproduction artifacts.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for f in &self.funcs {
            f.dump(&mut out);
        }
        out
    }

    /// Deterministic content hash of the module: every function with its
    /// name, signature, linkage, stack slots, blocks, phis, instructions and
    /// value metadata. Two modules with equal hashes compile to the same
    /// machine code (for a given back-end and options), which is what the
    /// compile-service module cache keys on.
    pub fn content_hash(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = tpde_core::service::Fnv1a::new();
        self.funcs.len().hash(&mut h);
        for f in &self.funcs {
            f.hash(&mut h);
        }
        h.finish()
    }
}

/// Builder for one function. Mirrors (a small part of) LLVM's `IRBuilder`.
pub struct FunctionBuilder {
    func: Function,
    cur_block: Block,
    const_cache: HashMap<(u64, u8), Value>,
}

impl FunctionBuilder {
    /// Starts building a function with the given signature. The entry block
    /// is created automatically; arguments get the first value ids.
    pub fn new(name: &str, params: &[Type], ret: Type) -> FunctionBuilder {
        let mut values = Vec::new();
        for (i, p) in params.iter().enumerate() {
            values.push(ValueInfo {
                ty: *p,
                def: ValueDef::Arg(i as u32),
            });
        }
        FunctionBuilder {
            func: Function {
                name: name.to_string(),
                params: params.to_vec(),
                ret,
                is_decl: false,
                internal: false,
                stack_slots: Vec::new(),
                stack_slot_values: Vec::new(),
                blocks: vec![BlockData::default()],
                values,
            },
            cur_block: Block(0),
            const_cache: HashMap::new(),
        }
    }

    /// Marks the function as module-internal.
    pub fn set_internal(&mut self) {
        self.func.internal = true;
    }

    /// The `n`-th argument value.
    pub fn arg(&self, n: usize) -> Value {
        Value(n as u32)
    }

    fn new_value(&mut self, ty: Type, def: ValueDef) -> Value {
        let v = Value(self.func.values.len() as u32);
        self.func.values.push(ValueInfo { ty, def });
        v
    }

    /// Creates a new basic block.
    pub fn create_block(&mut self) -> Block {
        let b = Block(self.func.blocks.len() as u32);
        self.func.blocks.push(BlockData::default());
        b
    }

    /// Switches the insertion point to `block`.
    pub fn switch_to(&mut self, block: Block) {
        self.cur_block = block;
    }

    /// The current insertion block.
    pub fn current_block(&self) -> Block {
        self.cur_block
    }

    /// An integer constant of the given type.
    pub fn iconst(&mut self, ty: Type, v: i64) -> Value {
        let bits = v as u64
            & match ty.size() {
                1 => 0xff,
                2 => 0xffff,
                4 => 0xffff_ffff,
                _ => u64::MAX,
            };
        let key = (bits, ty.size() as u8 | if ty.is_fp() { 0x80 } else { 0 });
        if let Some(v) = self.const_cache.get(&key) {
            return *v;
        }
        let val = self.new_value(ty, ValueDef::Const(bits));
        self.const_cache.insert(key, val);
        val
    }

    /// An `f64` constant.
    pub fn fconst(&mut self, v: f64) -> Value {
        let bits = v.to_bits();
        let key = (bits, 8u8 | 0x80);
        if let Some(v) = self.const_cache.get(&key) {
            return *v;
        }
        let val = self.new_value(Type::F64, ValueDef::Const(bits));
        self.const_cache.insert(key, val);
        val
    }

    /// A static stack slot (LLVM `alloca` in the entry block); the returned
    /// value is its address.
    pub fn alloca(&mut self, size: u32, align: u32) -> Value {
        let idx = self.func.stack_slots.len() as u32;
        self.func.stack_slots.push((size, align));
        let v = self.new_value(Type::Ptr, ValueDef::StackSlot(idx));
        self.func.stack_slot_values.push(v);
        v
    }

    /// A phi node in the current block (incoming edges added later).
    pub fn phi(&mut self, ty: Type) -> Value {
        let res = self.new_value(ty, ValueDef::Inst);
        self.func.blocks[self.cur_block.0 as usize].phis.push(Phi {
            res,
            ty,
            incoming: Vec::new(),
        });
        res
    }

    /// Adds an incoming edge to a phi created with [`FunctionBuilder::phi`].
    pub fn phi_add_incoming(&mut self, phi: Value, block: Block, value: Value) {
        for b in &mut self.func.blocks {
            for p in &mut b.phis {
                if p.res == phi {
                    p.incoming.push((block, value));
                    return;
                }
            }
        }
        panic!("phi value not found");
    }

    fn push(&mut self, inst: Inst) {
        self.func.blocks[self.cur_block.0 as usize].insts.push(inst);
    }

    /// Integer binary operation.
    pub fn bin(&mut self, op: BinOp, ty: Type, lhs: Value, rhs: Value) -> Value {
        let res = self.new_value(ty, ValueDef::Inst);
        self.push(Inst::Bin {
            op,
            ty,
            res,
            lhs,
            rhs,
        });
        res
    }

    /// Integer division / remainder.
    pub fn div(&mut self, signed: bool, rem: bool, ty: Type, lhs: Value, rhs: Value) -> Value {
        let res = self.new_value(ty, ValueDef::Inst);
        self.push(Inst::Div {
            signed,
            rem,
            ty,
            res,
            lhs,
            rhs,
        });
        res
    }

    /// Shift.
    pub fn shift(&mut self, kind: ShiftKind, ty: Type, lhs: Value, rhs: Value) -> Value {
        let res = self.new_value(ty, ValueDef::Inst);
        self.push(Inst::Shift {
            kind,
            ty,
            res,
            lhs,
            rhs,
        });
        res
    }

    /// Integer comparison.
    pub fn icmp(&mut self, cc: ICmp, ty: Type, lhs: Value, rhs: Value) -> Value {
        let res = self.new_value(Type::I1, ValueDef::Inst);
        self.push(Inst::Icmp {
            cc,
            ty,
            res,
            lhs,
            rhs,
        });
        res
    }

    /// FP binary operation.
    pub fn fbin(&mut self, op: FBinOp, ty: Type, lhs: Value, rhs: Value) -> Value {
        let res = self.new_value(ty, ValueDef::Inst);
        self.push(Inst::Fbin {
            op,
            ty,
            res,
            lhs,
            rhs,
        });
        res
    }

    /// FP comparison.
    pub fn fcmp(&mut self, cc: FCmp, ty: Type, lhs: Value, rhs: Value) -> Value {
        let res = self.new_value(Type::I1, ValueDef::Inst);
        self.push(Inst::Fcmp {
            cc,
            ty,
            res,
            lhs,
            rhs,
        });
        res
    }

    /// Load.
    pub fn load(&mut self, ty: Type, addr: Value, off: i32) -> Value {
        let res = self.new_value(ty, ValueDef::Inst);
        self.push(Inst::Load { ty, res, addr, off });
        res
    }

    /// Store.
    pub fn store(&mut self, ty: Type, addr: Value, off: i32, value: Value) {
        self.push(Inst::Store {
            ty,
            addr,
            off,
            value,
        });
    }

    /// Pointer arithmetic (simplified GEP).
    pub fn gep(&mut self, base: Value, index: Option<Value>, scale: u32, off: i64) -> Value {
        let res = self.new_value(Type::Ptr, ValueDef::Inst);
        self.push(Inst::Gep {
            res,
            base,
            index,
            scale,
            off,
        });
        res
    }

    /// Integer cast (extension or truncation).
    pub fn cast(&mut self, signed: bool, from: Type, to: Type, v: Value) -> Value {
        let res = self.new_value(to, ValueDef::Inst);
        self.push(Inst::Cast {
            signed,
            from,
            to,
            res,
            v,
        });
        res
    }

    /// Signed integer to FP conversion.
    pub fn int_to_fp(&mut self, from: Type, to: Type, v: Value) -> Value {
        let res = self.new_value(to, ValueDef::Inst);
        self.push(Inst::IntToFp { from, to, res, v });
        res
    }

    /// FP to signed integer conversion.
    pub fn fp_to_int(&mut self, from: Type, to: Type, v: Value) -> Value {
        let res = self.new_value(to, ValueDef::Inst);
        self.push(Inst::FpToInt { from, to, res, v });
        res
    }

    /// Select.
    pub fn select(&mut self, ty: Type, cond: Value, tval: Value, fval: Value) -> Value {
        let res = self.new_value(ty, ValueDef::Inst);
        self.push(Inst::Select {
            ty,
            res,
            cond,
            tval,
            fval,
        });
        res
    }

    /// Call returning a value.
    pub fn call(&mut self, callee: FuncId, ret_ty: Type, args: Vec<Value>) -> Value {
        let res = self.new_value(ret_ty, ValueDef::Inst);
        self.push(Inst::Call {
            callee,
            res: Some(res),
            ret_ty,
            args,
        });
        res
    }

    /// Void call.
    pub fn call_void(&mut self, callee: FuncId, args: Vec<Value>) {
        self.push(Inst::Call {
            callee,
            res: None,
            ret_ty: Type::Void,
            args,
        });
    }

    /// Unconditional branch.
    pub fn br(&mut self, target: Block) {
        self.push(Inst::Br { target });
    }

    /// Conditional branch.
    pub fn cond_br(&mut self, cond: Value, if_true: Block, if_false: Block) {
        self.push(Inst::CondBr {
            cond,
            if_true,
            if_false,
        });
    }

    /// Return a value.
    pub fn ret(&mut self, value: Option<Value>) {
        self.push(Inst::Ret { value });
    }

    /// Finishes the function.
    pub fn build(self) -> Function {
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_dense_values() {
        let mut b = FunctionBuilder::new("f", &[Type::I64, Type::I64], Type::I64);
        let s = b.bin(BinOp::Add, Type::I64, b.arg(0), b.arg(1));
        b.ret(Some(s));
        let f = b.build();
        assert_eq!(f.value_count(), 3);
        assert_eq!(f.value_type(Value(2)), Type::I64);
        assert_eq!(f.blocks.len(), 1);
        assert!(f.blocks[0].insts[1].is_terminator());
    }

    #[test]
    fn constants_are_cached() {
        let mut b = FunctionBuilder::new("f", &[], Type::I32);
        let a = b.iconst(Type::I32, 7);
        let c = b.iconst(Type::I32, 7);
        assert_eq!(a, c);
        let d = b.iconst(Type::I64, 7);
        assert_ne!(a, d);
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("foo", &[], Type::Void);
        b.ret(None);
        let id = m.add_function(b.build());
        assert_eq!(m.func_by_name("foo"), Some(id));
        let ext = m.declare("memcpy", vec![Type::Ptr, Type::Ptr, Type::I64], Type::Ptr);
        assert!(m.funcs[ext.0 as usize].is_decl);
    }
}
