//! # tpde-llvm
//!
//! The LLVM-IR case study of the TPDE reproduction (paper §5): an
//! LLVM-IR-like SSA IR with a builder, the TPDE back-end for x86-64 and
//! AArch64 built on the framework and the snippet encoders, two baseline
//! back-ends (a multi-pass "LLVM -O0/-O1"-like pipeline and a
//! copy-and-patch-style compiler), and the SPEC-like workload generator used
//! by the benchmarks.
//!
//! ```
//! use tpde_llvm::ir::{FunctionBuilder, Module, Type, BinOp};
//! use tpde_core::codegen::CompileOptions;
//!
//! let mut m = Module::new();
//! let mut b = FunctionBuilder::new("add", &[Type::I64, Type::I64], Type::I64);
//! let sum = b.bin(BinOp::Add, Type::I64, b.arg(0), b.arg(1));
//! b.ret(Some(sum));
//! m.add_function(b.build());
//! let compiled = tpde_llvm::backend::compile_x64(&m, &CompileOptions::default()).unwrap();
//! assert!(compiled.text_size() > 0);
//! ```

pub mod adapter;
pub mod backend;
pub mod baselines;
pub mod fuzz;
pub mod ir;
pub mod workloads;

pub use backend::{
    compile_a64, compile_a64_parallel, compile_service, compile_service_a64, compile_service_x64,
    compile_x64, compile_x64_parallel, compile_x64_tier0, compile_x64_tier0_parallel,
    LlvmCompileService, ModuleRequest, ServiceBackendKind,
};
pub use baselines::{
    compile_baseline, compile_baseline_parallel, compile_copy_patch, compile_copy_patch_parallel,
    compile_copy_patch_tiered, compile_copy_patch_tiered_parallel,
};
