//! Baseline back-ends the paper compares against.
//!
//! * [`compile_copy_patch`] — a copy-and-patch-style compiler: one pass, no
//!   liveness, every value lives in a stack slot and is moved through fixed
//!   registers, exactly the behaviour the paper attributes to template-based
//!   compilation (fast compile times, large and slow code).
//! * [`compile_baseline`] — a conventional multi-pass back-end standing in
//!   for LLVM -O0/-O1: it materializes a separate machine-level IR, runs
//!   per-function analysis/assignment passes over hash-map-keyed data
//!   structures and only then encodes, which is the structural cost the
//!   paper attributes to LLVM's pipeline. `opt_level = 1` runs additional
//!   cleanup passes (the "-O1 back-end" configuration of Figure 8).
//!
//! Both baselines target x86-64 only (the paper's copy-and-patch comparator
//! is also x86-64 only).

use crate::ir::{BinOp, FBinOp, Function, ICmp, Inst, Module, ShiftKind, Type, Value, ValueDef};
use std::collections::HashMap;
use tpde_core::codebuf::{CodeBuffer, Label, SectionKind, SymbolBinding, SymbolId};
use tpde_core::error::Result;
use tpde_enc::x64::{self, Alu, Cond, Gp, Mem, Shift, Xmm};

/// Result of a baseline compilation.
pub struct BaselineOutput {
    /// The filled code buffer (text section, symbols, relocations).
    pub buf: CodeBuffer,
    /// Number of compiled instructions (for reporting).
    pub insts: usize,
}

const TMP0: Gp = Gp::RAX;
const TMP1: Gp = Gp::RCX;
const TMP2: Gp = Gp::RDX;
const FTMP0: Xmm = Xmm(0);
const FTMP1: Xmm = Xmm(1);

/// Where a value lives during baseline/copy-patch compilation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Loc {
    /// Stack slot at `[rbp + off]`.
    Slot(i32),
    /// Constant.
    Const(u64),
    /// Address of a stack variable at `[rbp + off]`.
    StackAddr(i32),
}

struct FuncCtx {
    loc: HashMap<Value, Loc>,
    frame_size: i32,
    block_labels: Vec<Label>,
}

fn icmp_cond(cc: ICmp) -> Cond {
    match cc {
        ICmp::Eq => Cond::E,
        ICmp::Ne => Cond::NE,
        ICmp::Slt => Cond::L,
        ICmp::Sle => Cond::LE,
        ICmp::Sgt => Cond::G,
        ICmp::Sge => Cond::GE,
        ICmp::Ult => Cond::B,
        ICmp::Ule => Cond::BE,
        ICmp::Ugt => Cond::A,
        ICmp::Uge => Cond::AE,
    }
}

fn fcmp_cond(cc: crate::ir::FCmp) -> Cond {
    use crate::ir::FCmp;
    match cc {
        FCmp::Oeq => Cond::E,
        FCmp::One => Cond::NE,
        FCmp::Olt => Cond::B,
        FCmp::Ole => Cond::BE,
        FCmp::Ogt => Cond::A,
        FCmp::Oge => Cond::AE,
    }
}

impl FuncCtx {
    /// Builds the slot assignment for every value of the function.
    fn new(f: &Function) -> FuncCtx {
        let mut loc = HashMap::new();
        // stack variables first
        let mut stack_var_offsets = Vec::new();
        let mut var_off = 0i32;
        for (size, align) in &f.stack_slots {
            let a = (*align).max(8) as i32;
            var_off -= ((*size as i32 + a - 1) / a) * a;
            var_off &= !(a - 1);
            stack_var_offsets.push(var_off);
        }
        let mut off = var_off;
        for (vi, info) in f.values.iter().enumerate() {
            let v = Value(vi as u32);
            match &info.def {
                ValueDef::Const(c) => {
                    loc.insert(v, Loc::Const(*c));
                }
                ValueDef::StackSlot(idx) => {
                    loc.insert(v, Loc::StackAddr(stack_var_offsets[*idx as usize]));
                }
                _ => {
                    off -= 8;
                    loc.insert(v, Loc::Slot(off));
                }
            }
        }
        let frame_size = ((-off + 15) & !15) + 32;
        FuncCtx {
            loc,
            frame_size,
            block_labels: Vec::new(),
        }
    }

    fn load_gp(&self, buf: &mut CodeBuffer, dst: Gp, v: Value) {
        match self.loc[&v] {
            Loc::Slot(off) => x64::mov_rm(buf, 8, dst, Mem::base_disp(Gp::RBP, off)),
            Loc::Const(c) => x64::mov_ri(buf, 8, dst, c),
            Loc::StackAddr(off) => x64::lea(buf, dst, Mem::base_disp(Gp::RBP, off)),
        }
    }

    fn load_fp(&self, buf: &mut CodeBuffer, dst: Xmm, v: Value, size: u32) {
        match self.loc[&v] {
            Loc::Slot(off) => x64::fp_load(buf, size, dst, Mem::base_disp(Gp::RBP, off)),
            Loc::Const(c) => {
                x64::mov_ri(buf, 8, Gp::R11, c);
                x64::movq_xr(buf, dst, Gp::R11);
            }
            Loc::StackAddr(_) => unreachable!("stack address used as float"),
        }
    }

    fn store_gp(&self, buf: &mut CodeBuffer, v: Value, src: Gp) {
        if let Loc::Slot(off) = self.loc[&v] {
            x64::mov_mr(buf, 8, Mem::base_disp(Gp::RBP, off), src);
        }
    }

    fn store_fp(&self, buf: &mut CodeBuffer, v: Value, src: Xmm, size: u32) {
        if let Loc::Slot(off) = self.loc[&v] {
            x64::fp_store(buf, size, Mem::base_disp(Gp::RBP, off), src);
        }
    }
}

/// Emits the code for one instruction with all operands coming from and
/// going to stack slots (shared by the copy-and-patch back-end and the
/// emission pass of the multi-pass baseline).
#[allow(clippy::too_many_lines)]
fn emit_inst(
    module: &Module,
    f: &Function,
    ctx: &FuncCtx,
    buf: &mut CodeBuffer,
    inst: &Inst,
    epilogue: &dyn Fn(&mut CodeBuffer),
    tier_slots: Option<SymbolId>,
) -> Result<()> {
    match inst {
        Inst::Bin {
            op,
            ty,
            res,
            lhs,
            rhs,
        } => {
            let size = ty.size().max(4);
            ctx.load_gp(buf, TMP0, *lhs);
            ctx.load_gp(buf, TMP1, *rhs);
            match op {
                BinOp::Add => x64::alu_rr(buf, Alu::Add, size, TMP0, TMP1),
                BinOp::Sub => x64::alu_rr(buf, Alu::Sub, size, TMP0, TMP1),
                BinOp::And => x64::alu_rr(buf, Alu::And, size, TMP0, TMP1),
                BinOp::Or => x64::alu_rr(buf, Alu::Or, size, TMP0, TMP1),
                BinOp::Xor => x64::alu_rr(buf, Alu::Xor, size, TMP0, TMP1),
                BinOp::Mul => x64::imul_rr(buf, size, TMP0, TMP1),
            }
            ctx.store_gp(buf, *res, TMP0);
        }
        Inst::Div {
            signed,
            rem,
            ty,
            res,
            lhs,
            rhs,
        } => {
            let size = ty.size().max(4);
            ctx.load_gp(buf, TMP0, *lhs);
            ctx.load_gp(buf, TMP1, *rhs);
            if *signed {
                x64::cqo(buf, size);
                x64::idiv(buf, size, TMP1);
            } else {
                x64::alu_rr(buf, Alu::Xor, 4, TMP2, TMP2);
                x64::div(buf, size, TMP1);
            }
            ctx.store_gp(buf, *res, if *rem { TMP2 } else { TMP0 });
        }
        Inst::Shift {
            kind,
            ty,
            res,
            lhs,
            rhs,
        } => {
            let size = ty.size().max(4);
            ctx.load_gp(buf, TMP0, *lhs);
            ctx.load_gp(buf, TMP1, *rhs);
            let k = match kind {
                ShiftKind::Shl => Shift::Shl,
                ShiftKind::LShr => Shift::Shr,
                ShiftKind::AShr => Shift::Sar,
            };
            x64::shift_cl(buf, k, size, TMP0);
            ctx.store_gp(buf, *res, TMP0);
        }
        Inst::Icmp {
            cc,
            ty,
            res,
            lhs,
            rhs,
        } => {
            ctx.load_gp(buf, TMP0, *lhs);
            ctx.load_gp(buf, TMP1, *rhs);
            x64::alu_rr(buf, Alu::Cmp, ty.size().max(4), TMP0, TMP1);
            x64::setcc(buf, icmp_cond(*cc), TMP0);
            x64::movzx_rr(buf, TMP0, TMP0, 1);
            ctx.store_gp(buf, *res, TMP0);
        }
        Inst::Fbin {
            op,
            ty,
            res,
            lhs,
            rhs,
        } => {
            let size = ty.size();
            ctx.load_fp(buf, FTMP0, *lhs, size);
            ctx.load_fp(buf, FTMP1, *rhs, size);
            let opc = match op {
                FBinOp::Add => 0x58,
                FBinOp::Sub => 0x5c,
                FBinOp::Mul => 0x59,
                FBinOp::Div => 0x5e,
            };
            x64::fp_arith(buf, size, opc, FTMP0, FTMP1);
            ctx.store_fp(buf, *res, FTMP0, size);
        }
        Inst::Fcmp {
            cc,
            ty,
            res,
            lhs,
            rhs,
        } => {
            let size = ty.size();
            ctx.load_fp(buf, FTMP0, *lhs, size);
            ctx.load_fp(buf, FTMP1, *rhs, size);
            x64::fp_ucomis(buf, size, FTMP0, FTMP1);
            x64::setcc(buf, fcmp_cond(*cc), TMP0);
            x64::movzx_rr(buf, TMP0, TMP0, 1);
            ctx.store_gp(buf, *res, TMP0);
        }
        Inst::Fneg { ty, res, v } => {
            let size = ty.size();
            ctx.load_fp(buf, FTMP0, *v, size);
            let sign = if size == 4 { 1u64 << 31 } else { 1u64 << 63 };
            x64::mov_ri(buf, 8, Gp::R11, sign);
            x64::movq_xr(buf, FTMP1, Gp::R11);
            x64::fp_xor(buf, size, FTMP0, FTMP1);
            ctx.store_fp(buf, *res, FTMP0, size);
        }
        Inst::Load { ty, res, addr, off } => {
            ctx.load_gp(buf, TMP1, *addr);
            let mem = Mem::base_disp(TMP1, *off);
            if ty.is_fp() {
                x64::fp_load(buf, ty.size(), FTMP0, mem);
                ctx.store_fp(buf, *res, FTMP0, ty.size());
            } else {
                match ty.size() {
                    8 => x64::mov_rm(buf, 8, TMP0, mem),
                    4 => x64::mov_rm(buf, 4, TMP0, mem),
                    s => x64::movzx_rm(buf, TMP0, mem, s),
                }
                ctx.store_gp(buf, *res, TMP0);
            }
        }
        Inst::Store {
            ty,
            addr,
            off,
            value,
        } => {
            ctx.load_gp(buf, TMP1, *addr);
            let mem = Mem::base_disp(TMP1, *off);
            if ty.is_fp() {
                ctx.load_fp(buf, FTMP0, *value, ty.size());
                x64::fp_store(buf, ty.size(), mem, FTMP0);
            } else {
                ctx.load_gp(buf, TMP0, *value);
                x64::mov_mr(buf, ty.size(), mem, TMP0);
            }
        }
        Inst::Gep {
            res,
            base,
            index,
            scale,
            off,
        } => {
            ctx.load_gp(buf, TMP0, *base);
            if let Some(i) = index {
                ctx.load_gp(buf, TMP1, *i);
                x64::imul_rri(buf, 8, TMP1, TMP1, *scale as i32);
                x64::alu_rr(buf, Alu::Add, 8, TMP0, TMP1);
            }
            if *off != 0 {
                x64::alu_ri(buf, Alu::Add, 8, TMP0, *off as i32);
            }
            ctx.store_gp(buf, *res, TMP0);
        }
        Inst::Cast {
            signed,
            from,
            to,
            res,
            v,
        } => {
            ctx.load_gp(buf, TMP0, *v);
            if to.size() > from.size() {
                if *signed {
                    x64::movsx_rr(buf, 8, TMP0, TMP0, from.size());
                } else if from.size() < 4 {
                    x64::movzx_rr(buf, TMP0, TMP0, from.size());
                } else {
                    x64::mov_rr(buf, 4, TMP0, TMP0);
                }
            } else {
                x64::mov_rr(buf, to.size().max(4), TMP0, TMP0);
            }
            ctx.store_gp(buf, *res, TMP0);
        }
        Inst::IntToFp { from, to, res, v } => {
            ctx.load_gp(buf, TMP0, *v);
            x64::cvt_int_to_fp(buf, to.size(), from.size().max(4), FTMP0, TMP0);
            ctx.store_fp(buf, *res, FTMP0, to.size());
        }
        Inst::FpToInt { from, to, res, v } => {
            ctx.load_fp(buf, FTMP0, *v, from.size());
            x64::cvt_fp_to_int(buf, from.size(), to.size().max(4), TMP0, FTMP0);
            ctx.store_gp(buf, *res, TMP0);
        }
        Inst::FpConvert { to, res, v, .. } => {
            ctx.load_fp(buf, FTMP0, *v, if to.size() == 4 { 8 } else { 4 });
            x64::cvt_fp_to_fp(buf, to.size(), FTMP0, FTMP0);
            ctx.store_fp(buf, *res, FTMP0, to.size());
        }
        Inst::Select {
            ty,
            res,
            cond,
            tval,
            fval,
        } => {
            ctx.load_gp(buf, TMP2, *cond);
            ctx.load_gp(buf, TMP0, *tval);
            ctx.load_gp(buf, TMP1, *fval);
            x64::test_rr(buf, 4, TMP2, TMP2);
            x64::cmovcc(buf, Cond::E, ty.size().max(4), TMP0, TMP1);
            ctx.store_gp(buf, *res, TMP0);
        }
        Inst::Call {
            callee,
            res,
            ret_ty,
            args,
        } => {
            // move the first six integer/fp args into ABI registers from slots
            let gp_args = [Gp::RDI, Gp::RSI, Gp::RDX, Gp::RCX, Gp::R8, Gp::R9];
            let mut next_gp = 0;
            let mut next_fp = 0;
            for a in args {
                if f.value_type(*a).is_fp() {
                    ctx.load_fp(buf, Xmm(next_fp), *a, 8);
                    next_fp += 1;
                } else {
                    ctx.load_gp(buf, gp_args[next_gp], *a);
                    next_gp += 1;
                }
            }
            if let Some(slots) = tier_slots {
                // Route the call through the patchable slot table (see the
                // call-stub contract in `tpde_core::codebuf`): load the
                // slot's current target and call indirect through r11.
                x64::mov_sym_abs(buf, Gp::R11, slots, 8 * callee.0 as i64);
                x64::mov_rm(buf, 8, Gp::R11, Mem::base(Gp::R11));
                x64::call_reg(buf, Gp::R11);
            } else {
                let callee_f = &module.funcs[callee.0 as usize];
                let binding = if callee_f.internal {
                    SymbolBinding::Local
                } else {
                    SymbolBinding::Global
                };
                let sym = buf.declare_symbol(&callee_f.name, binding, true);
                x64::call_sym(buf, sym);
            }
            if let Some(r) = res {
                if *ret_ty != Type::Void {
                    if ret_ty.is_fp() {
                        ctx.store_fp(buf, *r, Xmm(0), ret_ty.size());
                    } else {
                        ctx.store_gp(buf, *r, Gp::RAX);
                    }
                }
            }
        }
        Inst::Br { target } => {
            x64::jmp_label(buf, ctx.block_labels[target.0 as usize]);
        }
        Inst::CondBr {
            cond,
            if_true,
            if_false,
        } => {
            ctx.load_gp(buf, TMP0, *cond);
            x64::test_rr(buf, 4, TMP0, TMP0);
            x64::jcc_label(buf, Cond::NE, ctx.block_labels[if_true.0 as usize]);
            x64::jmp_label(buf, ctx.block_labels[if_false.0 as usize]);
        }
        Inst::Ret { value } => {
            if let Some(v) = value {
                if f.value_type(*v).is_fp() {
                    ctx.load_fp(buf, Xmm(0), *v, 8);
                } else {
                    ctx.load_gp(buf, Gp::RAX, *v);
                }
            }
            epilogue(buf);
        }
    }
    Ok(())
}

fn emit_phi_moves(f: &Function, ctx: &FuncCtx, buf: &mut CodeBuffer, pred: u32, succ: u32) {
    for phi in &f.blocks[succ as usize].phis {
        for (b, v) in &phi.incoming {
            if b.0 == pred {
                if phi.ty.is_fp() {
                    ctx.load_fp(buf, FTMP0, *v, phi.ty.size());
                    ctx.store_fp(buf, phi.res, FTMP0, phi.ty.size());
                } else {
                    ctx.load_gp(buf, TMP0, *v);
                    ctx.store_gp(buf, phi.res, TMP0);
                }
            }
        }
    }
}

pub(crate) fn compile_function_stacky(
    module: &Module,
    f: &Function,
    buf: &mut CodeBuffer,
) -> Result<()> {
    compile_function_stacky_inner(module, f, buf, None)
}

/// Tier-0 instrumented variant of [`compile_function_stacky`]: declares the
/// tier table symbols, bumps entry counter `fi` after the prologue and
/// routes every direct call through the patchable call-slot table.
pub(crate) fn compile_function_stacky_tiered(
    module: &Module,
    f: &Function,
    fi: u32,
    buf: &mut CodeBuffer,
) -> Result<()> {
    compile_function_stacky_inner(module, f, buf, Some(fi))
}

fn compile_function_stacky_inner(
    module: &Module,
    f: &Function,
    buf: &mut CodeBuffer,
    tier_index: Option<u32>,
) -> Result<()> {
    // Tier symbols are declared at the very start of the body so the
    // declaration-log replay of the sharded pipeline interns them at the
    // same ids as the sequential loop.
    let tier_syms = tier_index.map(|_| buf.declare_tier_symbols());
    let mut ctx = FuncCtx::new(f);
    ctx.block_labels = f.blocks.iter().map(|_| buf.new_label()).collect();

    // prologue
    x64::push_r(buf, Gp::RBP);
    x64::mov_rr(buf, 8, Gp::RBP, Gp::RSP);
    x64::alu_ri(buf, Alu::Sub, 8, Gp::RSP, ctx.frame_size);
    // tier-0 entry counter (flags are dead here, r11 is never live)
    if let (Some(fi), Some((counters, _))) = (tier_index, tier_syms) {
        x64::mov_sym_abs(buf, Gp::R11, counters, 8 * fi as i64);
        x64::alu_mi(buf, Alu::Add, 8, Mem::base(Gp::R11), 1);
    }
    // spill arguments to their slots
    let gp_args = [Gp::RDI, Gp::RSI, Gp::RDX, Gp::RCX, Gp::R8, Gp::R9];
    let mut next_gp = 0;
    let mut next_fp = 0;
    for (i, ty) in f.params.iter().enumerate() {
        let v = Value(i as u32);
        if ty.is_fp() {
            ctx.store_fp(buf, v, Xmm(next_fp), 8);
            next_fp += 1;
        } else {
            ctx.store_gp(buf, v, gp_args[next_gp]);
            next_gp += 1;
        }
    }
    let _ = next_fp;

    let epilogue = |buf: &mut CodeBuffer| {
        x64::mov_rr(buf, 8, Gp::RSP, Gp::RBP);
        x64::pop_r(buf, Gp::RBP);
        x64::ret(buf);
    };

    for (bi, block) in f.blocks.iter().enumerate() {
        buf.bind_label(ctx.block_labels[bi]);
        for inst in &block.insts {
            // phi moves belong on the edge; emit them right before terminators
            if inst.is_terminator() {
                for succ in inst.successors() {
                    emit_phi_moves(f, &ctx, buf, bi as u32, succ.0);
                }
            }
            emit_inst(
                module,
                f,
                &ctx,
                buf,
                inst,
                &epilogue,
                tier_syms.map(|(_, s)| s),
            )?;
        }
    }
    Ok(())
}

/// Declares one symbol per module function in function order (decls get a
/// global binding, definitions follow their `internal` flag), matching what
/// the sequential baseline loops produce. Shared with the parallel variants,
/// which require every shard to pre-declare the identical symbol prefix.
pub(crate) fn declare_baseline_symbols(module: &Module, buf: &mut CodeBuffer) {
    for f in &module.funcs {
        let binding = if !f.is_decl && f.internal {
            SymbolBinding::Local
        } else {
            SymbolBinding::Global
        };
        buf.declare_symbol(&f.name, binding, true);
    }
}

/// Total instruction count of the module's defined functions.
pub(crate) fn defined_inst_count(module: &Module) -> usize {
    module
        .funcs
        .iter()
        .filter(|f| !f.is_decl)
        .map(|f| f.inst_count())
        .sum()
}

/// Copy-and-patch-style compilation of a whole module (single pass, no
/// analysis, everything through the stack).
///
/// All function symbols are declared upfront in function order (as the TPDE
/// driver does), so the symbol table is identical to the parallel variant's
/// even when a function calls one defined later in the module.
pub fn compile_copy_patch(module: &Module) -> Result<BaselineOutput> {
    compile_copy_patch_inner(module, false)
}

/// Tier-0 variant of [`compile_copy_patch`]: entry counters, slot-routed
/// calls, and the tier tables defined at the end of the module (see the
/// call-stub contract in [`tpde_core::codebuf`]).
pub fn compile_copy_patch_tiered(module: &Module) -> Result<BaselineOutput> {
    compile_copy_patch_inner(module, true)
}

fn compile_copy_patch_inner(module: &Module, tiered: bool) -> Result<BaselineOutput> {
    let mut buf = CodeBuffer::new();
    declare_baseline_symbols(module, &mut buf);
    let mut insts = 0;
    for (fi, f) in module.funcs.iter().enumerate() {
        if f.is_decl {
            continue;
        }
        let sym = buf
            .symbol_by_name(&f.name)
            .expect("function symbol predeclared");
        let start = buf.text_offset();
        buf.define_symbol(sym, SectionKind::Text, start, 0);
        if tiered {
            compile_function_stacky_tiered(module, f, fi as u32, &mut buf)?;
        } else {
            compile_function_stacky(module, f, &mut buf)?;
        }
        buf.set_symbol_size(sym, buf.text_offset() - start);
        buf.finish_func_fixups()?;
        insts += f.inst_count();
    }
    buf.define_tier_tables(module.funcs.len());
    Ok(BaselineOutput { buf, insts })
}

/// Shared scaffolding of the parallel baseline variants: shards the given
/// per-function compiler across workers through the generic
/// [`tpde_core::parallel::compile_sharded`] harness and assembles the
/// baseline output. Both baselines are self-contained per function (labels
/// and fixups resolved per function, callee symbols declared at use), so
/// the merged output is byte-identical to the sequential compilers.
fn compile_baseline_sharded(
    module: &Module,
    threads: usize,
    compile_fn: impl Fn(u32, &Function, &mut CodeBuffer) -> Result<()> + Sync,
) -> Result<BaselineOutput> {
    let nfuncs = module.funcs.len();
    let workers = threads.max(1).min(nfuncs.max(1));
    let (_, buf) = tpde_core::parallel::compile_sharded(
        nfuncs,
        vec![(); workers],
        |buf| declare_baseline_symbols(module, buf),
        |_: &mut (), buf, fi| {
            let f = &module.funcs[fi as usize];
            if f.is_decl {
                return Ok(false);
            }
            compile_fn(fi, f, buf)?;
            buf.finish_func_fixups()?;
            Ok(true)
        },
    );
    Ok(BaselineOutput {
        buf: buf?,
        insts: defined_inst_count(module),
    })
}

/// Function-sharded parallel variant of [`compile_copy_patch`]; the output
/// is byte-identical to the sequential compiler.
pub fn compile_copy_patch_parallel(module: &Module, threads: usize) -> Result<BaselineOutput> {
    compile_baseline_sharded(module, threads, |_, f, buf| {
        compile_function_stacky(module, f, buf)
    })
}

/// Function-sharded parallel variant of [`compile_copy_patch_tiered`]; the
/// output is byte-identical to the sequential tiered compiler (the merge
/// replays the tier-symbol declarations and defines the tables afterwards).
pub fn compile_copy_patch_tiered_parallel(
    module: &Module,
    threads: usize,
) -> Result<BaselineOutput> {
    compile_baseline_sharded(module, threads, |fi, f, buf| {
        compile_function_stacky_tiered(module, f, fi, buf)
    })
}

/// A "machine instruction" of the baseline's intermediate representation;
/// deliberately a heap-heavy clone of the IR instruction, mirroring the cost
/// of materializing LLVM Machine IR.
struct MachInst {
    inst: Inst,
    block: u32,
    /// operand locations resolved during "instruction selection"
    operand_locs: Vec<Loc>,
}

/// The multi-pass baseline's per-function compilation unit (passes 1–4).
/// Self-contained: labels and fixups are resolved per function, callee
/// symbols are declared at use, so the unit can run in a shard buffer.
pub(crate) fn compile_function_baseline(
    module: &Module,
    f: &Function,
    buf: &mut CodeBuffer,
    opt_level: u32,
) -> Result<()> {
    // Pass 1: value bookkeeping (use counts), hash-map keyed.
    let mut use_counts: HashMap<Value, u32> = HashMap::new();
    for b in &f.blocks {
        for phi in &b.phis {
            for (_, v) in &phi.incoming {
                *use_counts.entry(*v).or_default() += 1;
            }
        }
        for inst in &b.insts {
            for v in inst.operands() {
                *use_counts.entry(v).or_default() += 1;
            }
        }
    }

    // Pass 2: "instruction selection" — materialize a machine-level copy
    // of every instruction with resolved operand locations.
    let ctx = FuncCtx::new(f);
    let mut mir: Vec<MachInst> = Vec::with_capacity(f.inst_count());
    for (bi, b) in f.blocks.iter().enumerate() {
        for inst in &b.insts {
            let operand_locs = inst.operands().iter().map(|v| ctx.loc[v]).collect();
            mir.push(MachInst {
                inst: inst.clone(),
                block: bi as u32,
                operand_locs,
            });
        }
    }

    // Pass 3 (-O1 only): cleanup passes over the machine IR.
    if opt_level >= 1 {
        // constant-operand marking and a trivial redundancy scan; these
        // walk the whole machine IR again (cost model of -O1 passes).
        let mut const_ops = 0usize;
        for m in &mir {
            for l in &m.operand_locs {
                if matches!(l, Loc::Const(_)) {
                    const_ops += 1;
                }
            }
        }
        let mut last_def: HashMap<Value, usize> = HashMap::new();
        for (i, m) in mir.iter().enumerate() {
            if let Some(r) = m.inst.result() {
                last_def.insert(r, i);
            }
        }
        let _ = (const_ops, last_def);
    }

    // Pass 4: emission.
    let mut ctx = ctx;
    ctx.block_labels = f.blocks.iter().map(|_| buf.new_label()).collect();
    x64::push_r(buf, Gp::RBP);
    x64::mov_rr(buf, 8, Gp::RBP, Gp::RSP);
    x64::alu_ri(buf, Alu::Sub, 8, Gp::RSP, ctx.frame_size);
    let gp_args = [Gp::RDI, Gp::RSI, Gp::RDX, Gp::RCX, Gp::R8, Gp::R9];
    let mut next_gp = 0;
    let mut next_fp = 0;
    for (i, ty) in f.params.iter().enumerate() {
        let v = Value(i as u32);
        if ty.is_fp() {
            ctx.store_fp(buf, v, Xmm(next_fp), 8);
            next_fp += 1;
        } else {
            ctx.store_gp(buf, v, gp_args[next_gp]);
            next_gp += 1;
        }
    }
    let epilogue = |buf: &mut CodeBuffer| {
        x64::mov_rr(buf, 8, Gp::RSP, Gp::RBP);
        x64::pop_r(buf, Gp::RBP);
        x64::ret(buf);
    };
    let mut cur_block = u32::MAX;
    for m in &mir {
        if m.block != cur_block {
            cur_block = m.block;
            buf.bind_label(ctx.block_labels[cur_block as usize]);
        }
        if m.inst.is_terminator() {
            for succ in m.inst.successors() {
                emit_phi_moves(f, &ctx, buf, cur_block, succ.0);
            }
        }
        emit_inst(module, f, &ctx, buf, &m.inst, &epilogue, None)?;
    }
    Ok(())
}

/// Multi-pass baseline back-end (LLVM -O0 / -O1 stand-in). Function symbols
/// are declared upfront, like [`compile_copy_patch`].
pub fn compile_baseline(module: &Module, opt_level: u32) -> Result<BaselineOutput> {
    let mut buf = CodeBuffer::new();
    declare_baseline_symbols(module, &mut buf);
    let mut insts = 0;
    for f in &module.funcs {
        if f.is_decl {
            continue;
        }
        let sym = buf
            .symbol_by_name(&f.name)
            .expect("function symbol predeclared");
        let start = buf.text_offset();
        buf.define_symbol(sym, SectionKind::Text, start, 0);
        compile_function_baseline(module, f, &mut buf, opt_level)?;
        buf.set_symbol_size(sym, buf.text_offset() - start);
        buf.finish_func_fixups()?;
        insts += f.inst_count();
    }
    Ok(BaselineOutput { buf, insts })
}

/// Function-sharded parallel variant of [`compile_baseline`]; byte-identical
/// output for any thread count.
pub fn compile_baseline_parallel(
    module: &Module,
    opt_level: u32,
    threads: usize,
) -> Result<BaselineOutput> {
    compile_baseline_sharded(module, threads, |_, f, buf| {
        compile_function_baseline(module, f, buf, opt_level)
    })
}
