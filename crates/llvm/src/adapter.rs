//! The TPDE IR adapter for the LLVM-IR-like module (§5.1.1 of the paper).

use crate::ir::{Block, FuncId, Inst, Module, Type, Value, ValueDef};
use tpde_core::adapter::{
    BlockRef, FuncRef, InstRef, IrAdapter, Linkage, PhiIncoming, StackVarDesc, ValueRef,
};
use tpde_core::regs::RegBank;

/// Adapter exposing a [`Module`] to the TPDE framework.
///
/// The IR already numbers values, blocks and functions densely, so
/// `switch_func` only has to pre-index the current function into flat slice
/// tables (instruction lists, operands, results, successors, phis, use
/// counts). All tables are `clear()`ed — never dropped — between functions,
/// so after the largest function of a module has been indexed once, the
/// compile loop performs no adapter allocations (see the `tpde_core::adapter`
/// module docs).
pub struct LlvmAdapter<'m> {
    /// The module being compiled.
    pub module: &'m Module,
    cur: FuncId,
    /// The reusable flat-table storage.
    s: AdapterScratch,
}

/// The flat-table working memory of an [`LlvmAdapter`], detached from the
/// module borrow so it can be kept warm across modules.
///
/// One-shot compiles never see this type ([`LlvmAdapter::new`] starts from
/// empty tables); long-lived drivers — notably the compile-service workers —
/// park the scratch between requests ([`LlvmAdapter::into_scratch`]) and
/// re-attach it to the next module ([`LlvmAdapter::with_scratch`]), so the
/// per-function indexing in `switch_func` reuses the grown capacities
/// instead of re-allocating for every request.
#[derive(Debug, Default)]
pub struct AdapterScratch {
    /// Flat instruction index -> (block, index within block).
    inst_index: Vec<(u32, u32)>,
    /// Per block: (first flat index, count).
    block_ranges: Vec<(u32, u32)>,
    /// Per block: instruction references (sliced per block).
    inst_refs: Vec<InstRef>,
    /// All operand lists back to back; per-instruction range below.
    operands: Vec<ValueRef>,
    /// Per instruction: (start, len) into `operands`.
    operand_ranges: Vec<(u32, u32)>,
    /// All result lists back to back (0 or 1 entries per instruction).
    results: Vec<ValueRef>,
    /// Per instruction: (start, len) into `results`.
    result_ranges: Vec<(u32, u32)>,
    /// All successor lists back to back; per-block range below.
    succs: Vec<BlockRef>,
    /// Per block: (start, len) into `succs`.
    succ_ranges: Vec<(u32, u32)>,
    /// All phi lists back to back; per-block range below.
    phis: Vec<ValueRef>,
    /// Per block: (start, len) into `phis`.
    phi_ranges: Vec<(u32, u32)>,
    /// All phi incoming edges back to back; per-value range below.
    phi_inc: Vec<PhiIncoming>,
    /// Per value: (start, len) into `phi_inc` (len 0 for non-phis).
    phi_inc_ranges: Vec<(u32, u32)>,
    /// Argument values of the current function.
    args: Vec<ValueRef>,
    /// Static stack variables of the current function.
    stack_vars: Vec<StackVarDesc>,
    /// Per value: number of uses in the current function (operands and phi
    /// incoming edges). Replaces a per-query walk over the whole function.
    use_counts: Vec<u32>,
}

impl<'m> LlvmAdapter<'m> {
    /// Creates an adapter for a module with empty tables.
    pub fn new(module: &'m Module) -> LlvmAdapter<'m> {
        LlvmAdapter::with_scratch(module, AdapterScratch::default())
    }

    /// Creates an adapter for a module reusing previously grown table
    /// capacities (see [`AdapterScratch`]).
    pub fn with_scratch(module: &'m Module, scratch: AdapterScratch) -> LlvmAdapter<'m> {
        LlvmAdapter {
            module,
            cur: FuncId(0),
            s: scratch,
        }
    }

    /// Detaches the flat-table storage for reuse with another module.
    pub fn into_scratch(self) -> AdapterScratch {
        self.s
    }

    /// The function currently being compiled.
    pub fn cur_func(&self) -> &'m crate::ir::Function {
        &self.module.funcs[self.cur.0 as usize]
    }

    /// The IR instruction behind an [`InstRef`].
    pub fn inst(&self, inst: InstRef) -> &'m Inst {
        let (b, i) = self.s.inst_index[inst.idx()];
        &self.cur_func().blocks[b as usize].insts[i as usize]
    }

    /// The instruction following `inst` within the same block, if any.
    pub fn next_inst_in_block(&self, inst: InstRef) -> Option<InstRef> {
        let (b, i) = self.s.inst_index[inst.idx()];
        let (start, count) = self.s.block_ranges[b as usize];
        let next = inst.0 + 1;
        if next < start + count && (i + 1) < count {
            Some(InstRef(next))
        } else {
            None
        }
    }

    /// Type of a value in the current function.
    pub fn value_type(&self, v: ValueRef) -> Type {
        self.cur_func().value_type(Value(v.0))
    }

    /// Number of uses of a value within the current function (used for the
    /// single-use check of compare/branch fusion). Precomputed in
    /// `switch_func`, so this is a table lookup.
    pub fn count_uses(&self, v: Value) -> usize {
        self.s
            .use_counts
            .get(v.0 as usize)
            .copied()
            .unwrap_or_default() as usize
    }
}

fn bank_of(ty: Type) -> RegBank {
    if ty.is_fp() {
        RegBank::FP
    } else {
        RegBank::GP
    }
}

impl<'m> IrAdapter for LlvmAdapter<'m> {
    fn func_count(&self) -> usize {
        self.module.funcs.len()
    }

    fn func_name(&self, func: FuncRef) -> &str {
        &self.module.funcs[func.idx()].name
    }

    fn func_linkage(&self, func: FuncRef) -> Linkage {
        if self.module.funcs[func.idx()].internal {
            Linkage::Internal
        } else {
            Linkage::External
        }
    }

    fn func_is_definition(&self, func: FuncRef) -> bool {
        !self.module.funcs[func.idx()].is_decl
    }

    fn switch_func(&mut self, func: FuncRef) {
        self.cur = FuncId(func.0);
        self.s.inst_index.clear();
        self.s.block_ranges.clear();
        self.s.inst_refs.clear();
        self.s.operands.clear();
        self.s.operand_ranges.clear();
        self.s.results.clear();
        self.s.result_ranges.clear();
        self.s.succs.clear();
        self.s.succ_ranges.clear();
        self.s.phis.clear();
        self.s.phi_ranges.clear();
        self.s.phi_inc.clear();
        self.s.phi_inc_ranges.clear();
        self.s.args.clear();
        self.s.stack_vars.clear();
        self.s.use_counts.clear();

        let f = self.cur_func();
        self.s.use_counts.resize(f.value_count(), 0);
        self.s.phi_inc_ranges.resize(f.value_count(), (0, 0));
        self.s.args.extend((0..f.params.len() as u32).map(ValueRef));
        self.s
            .stack_vars
            .extend(f.stack_slots.iter().zip(f.stack_slot_values.iter()).map(
                |(&(size, align), &v)| StackVarDesc {
                    value: ValueRef(v.0),
                    size,
                    align,
                },
            ));

        for b in &f.blocks {
            // instructions: dense flat numbering
            let start = self.s.inst_index.len() as u32;
            for (ii, inst) in b.insts.iter().enumerate() {
                self.s
                    .inst_refs
                    .push(InstRef(self.s.inst_index.len() as u32));
                self.s
                    .inst_index
                    .push((self.s.block_ranges.len() as u32, ii as u32));
                let op_start = self.s.operands.len() as u32;
                inst.visit_operands(|v| {
                    self.s.operands.push(ValueRef(v.0));
                    // Tolerate out-of-range ids while indexing: the verifier
                    // reads the raw operand list and rejects them with a
                    // typed error before codegen consults any use count.
                    if let Some(c) = self.s.use_counts.get_mut(v.0 as usize) {
                        *c += 1;
                    }
                });
                self.s
                    .operand_ranges
                    .push((op_start, self.s.operands.len() as u32 - op_start));
                let res_start = self.s.results.len() as u32;
                if let Some(r) = inst.result() {
                    self.s.results.push(ValueRef(r.0));
                }
                self.s
                    .result_ranges
                    .push((res_start, self.s.results.len() as u32 - res_start));
            }
            self.s.block_ranges.push((start, b.insts.len() as u32));

            // successors (from the terminator)
            let succ_start = self.s.succs.len() as u32;
            if let Some(t) = b.insts.last() {
                t.visit_successors(|s| self.s.succs.push(BlockRef(s.0)));
            }
            self.s
                .succ_ranges
                .push((succ_start, self.s.succs.len() as u32 - succ_start));

            // phis and their incoming edges
            let phi_start = self.s.phis.len() as u32;
            for p in &b.phis {
                self.s.phis.push(ValueRef(p.res.0));
                let inc_start = self.s.phi_inc.len() as u32;
                for (blk, v) in &p.incoming {
                    self.s.phi_inc.push(PhiIncoming {
                        block: BlockRef(blk.0),
                        value: ValueRef(v.0),
                    });
                    if let Some(c) = self.s.use_counts.get_mut(v.0 as usize) {
                        *c += 1;
                    }
                }
                if let Some(r) = self.s.phi_inc_ranges.get_mut(p.res.0 as usize) {
                    *r = (inc_start, self.s.phi_inc.len() as u32 - inc_start);
                }
            }
            self.s
                .phi_ranges
                .push((phi_start, self.s.phis.len() as u32 - phi_start));
        }
    }

    fn value_count(&self) -> usize {
        self.cur_func().value_count()
    }

    fn inst_count(&self) -> usize {
        self.s.inst_index.len()
    }

    fn args(&self) -> &[ValueRef] {
        &self.s.args
    }

    fn static_stack_vars(&self) -> &[StackVarDesc] {
        &self.s.stack_vars
    }

    fn block_count(&self) -> usize {
        self.s.block_ranges.len()
    }

    fn block_succs(&self, block: BlockRef) -> &[BlockRef] {
        let (start, len) = self.s.succ_ranges[block.idx()];
        &self.s.succs[start as usize..(start + len) as usize]
    }

    fn block_phis(&self, block: BlockRef) -> &[ValueRef] {
        let (start, len) = self.s.phi_ranges[block.idx()];
        &self.s.phis[start as usize..(start + len) as usize]
    }

    fn block_insts(&self, block: BlockRef) -> &[InstRef] {
        let (start, len) = self.s.block_ranges[block.idx()];
        &self.s.inst_refs[start as usize..(start + len) as usize]
    }

    fn phi_incoming(&self, phi: ValueRef) -> &[PhiIncoming] {
        let (start, len) = self.s.phi_inc_ranges[phi.idx()];
        &self.s.phi_inc[start as usize..(start + len) as usize]
    }

    fn inst_operands(&self, inst: InstRef) -> &[ValueRef] {
        let (start, len) = self.s.operand_ranges[inst.idx()];
        &self.s.operands[start as usize..(start + len) as usize]
    }

    fn inst_results(&self, inst: InstRef) -> &[ValueRef] {
        let (start, len) = self.s.result_ranges[inst.idx()];
        &self.s.results[start as usize..(start + len) as usize]
    }

    fn val_part_count(&self, _val: ValueRef) -> u32 {
        1
    }

    fn val_part_size(&self, val: ValueRef, _part: u32) -> u32 {
        self.cur_func().value_type(Value(val.0)).size().max(1)
    }

    fn val_part_bank(&self, val: ValueRef, _part: u32) -> RegBank {
        bank_of(self.cur_func().value_type(Value(val.0)))
    }

    fn val_is_const(&self, val: ValueRef) -> bool {
        matches!(self.cur_func().values[val.idx()].def, ValueDef::Const(_))
    }

    fn val_const_data(&self, val: ValueRef, _part: u32) -> u64 {
        match self.cur_func().values[val.idx()].def {
            ValueDef::Const(bits) => bits,
            _ => 0,
        }
    }

    // Verification support: this adapter can classify terminators and
    // direct calls exactly, so the verifier checks terminator placement
    // and call arity for LLVM-IR modules.

    fn inst_is_terminator(&self, inst: InstRef) -> Option<bool> {
        Some(self.inst(inst).is_terminator())
    }

    fn inst_call_target(&self, inst: InstRef) -> Option<(FuncRef, usize)> {
        match self.inst(inst) {
            Inst::Call { callee, args, .. } => Some((FuncRef(callee.0), args.len())),
            _ => None,
        }
    }

    fn func_param_count(&self, func: FuncRef) -> Option<usize> {
        self.module.funcs.get(func.idx()).map(|f| f.params.len())
    }
}

/// Helper to convert IR blocks to framework block references.
pub fn block_ref(b: Block) -> BlockRef {
    BlockRef(b.0)
}

/// Helper to convert IR values to framework value references.
pub fn value_ref(v: Value) -> ValueRef {
    ValueRef(v.0)
}
