//! The TPDE IR adapter for the LLVM-IR-like module (§5.1.1 of the paper).

use crate::ir::{Block, FuncId, Inst, Module, Type, Value, ValueDef};
use tpde_core::adapter::{
    ArgInfo, BlockRef, FuncRef, InstRef, IrAdapter, Linkage, PhiIncoming, StackVarDesc, ValueRef,
};
use tpde_core::regs::RegBank;

/// Adapter exposing a [`Module`] to the TPDE framework.
///
/// The IR already numbers values, blocks and functions densely, so the
/// adapter is a thin view; `switch_func` only builds the flat instruction
/// index (the framework refers to instructions by dense ids).
pub struct LlvmAdapter<'m> {
    /// The module being compiled.
    pub module: &'m Module,
    cur: FuncId,
    /// Flat instruction index -> (block, index within block).
    inst_index: Vec<(u32, u32)>,
    /// Per block: (first flat index, count).
    block_ranges: Vec<(u32, u32)>,
}

impl<'m> LlvmAdapter<'m> {
    /// Creates an adapter for a module.
    pub fn new(module: &'m Module) -> LlvmAdapter<'m> {
        LlvmAdapter {
            module,
            cur: FuncId(0),
            inst_index: Vec::new(),
            block_ranges: Vec::new(),
        }
    }

    /// The function currently being compiled.
    pub fn cur_func(&self) -> &'m crate::ir::Function {
        &self.module.funcs[self.cur.0 as usize]
    }

    /// The IR instruction behind an [`InstRef`].
    pub fn inst(&self, inst: InstRef) -> &'m Inst {
        let (b, i) = self.inst_index[inst.idx()];
        &self.cur_func().blocks[b as usize].insts[i as usize]
    }

    /// The instruction following `inst` within the same block, if any.
    pub fn next_inst_in_block(&self, inst: InstRef) -> Option<InstRef> {
        let (b, i) = self.inst_index[inst.idx()];
        let (start, count) = self.block_ranges[b as usize];
        let next = inst.0 + 1;
        if next < start + count && (i + 1) < count {
            Some(InstRef(next))
        } else {
            None
        }
    }

    /// Type of a value in the current function.
    pub fn value_type(&self, v: ValueRef) -> Type {
        self.cur_func().value_type(Value(v.0))
    }

    /// Number of uses of a value within the current function (used for the
    /// single-use check of compare/branch fusion).
    pub fn count_uses(&self, v: Value) -> usize {
        let f = self.cur_func();
        let mut n = 0;
        for b in &f.blocks {
            for phi in &b.phis {
                n += phi.incoming.iter().filter(|(_, val)| *val == v).count();
            }
            for inst in &b.insts {
                n += inst.operands().iter().filter(|val| **val == v).count();
            }
        }
        n
    }
}

fn bank_of(ty: Type) -> RegBank {
    if ty.is_fp() {
        RegBank::FP
    } else {
        RegBank::GP
    }
}

impl<'m> IrAdapter for LlvmAdapter<'m> {
    fn funcs(&self) -> Vec<FuncRef> {
        (0..self.module.funcs.len() as u32).map(FuncRef).collect()
    }

    fn func_name(&self, func: FuncRef) -> String {
        self.module.funcs[func.idx()].name.clone()
    }

    fn func_linkage(&self, func: FuncRef) -> Linkage {
        if self.module.funcs[func.idx()].internal {
            Linkage::Internal
        } else {
            Linkage::External
        }
    }

    fn func_is_definition(&self, func: FuncRef) -> bool {
        !self.module.funcs[func.idx()].is_decl
    }

    fn switch_func(&mut self, func: FuncRef) {
        self.cur = FuncId(func.0);
        self.inst_index.clear();
        self.block_ranges.clear();
        let f = self.cur_func();
        for (bi, b) in f.blocks.iter().enumerate() {
            let start = self.inst_index.len() as u32;
            for ii in 0..b.insts.len() {
                self.inst_index.push((bi as u32, ii as u32));
            }
            self.block_ranges.push((start, b.insts.len() as u32));
        }
    }

    fn value_count(&self) -> usize {
        self.cur_func().value_count()
    }

    fn args(&self) -> Vec<ValueRef> {
        (0..self.cur_func().params.len() as u32)
            .map(ValueRef)
            .collect()
    }

    fn arg_info(&self) -> Vec<ArgInfo> {
        self.args().iter().map(|_| ArgInfo::default()).collect()
    }

    fn static_stack_vars(&self) -> Vec<StackVarDesc> {
        let f = self.cur_func();
        f.stack_slots
            .iter()
            .zip(f.stack_slot_values.iter())
            .map(|(&(size, align), &v)| StackVarDesc {
                value: ValueRef(v.0),
                size,
                align,
            })
            .collect()
    }

    fn blocks(&self) -> Vec<BlockRef> {
        (0..self.cur_func().blocks.len() as u32)
            .map(BlockRef)
            .collect()
    }

    fn block_succs(&self, block: BlockRef) -> Vec<BlockRef> {
        let b = &self.cur_func().blocks[block.idx()];
        match b.insts.last() {
            Some(t) => t.successors().iter().map(|s| BlockRef(s.0)).collect(),
            None => Vec::new(),
        }
    }

    fn block_phis(&self, block: BlockRef) -> Vec<ValueRef> {
        self.cur_func().blocks[block.idx()]
            .phis
            .iter()
            .map(|p| ValueRef(p.res.0))
            .collect()
    }

    fn block_insts(&self, block: BlockRef) -> Vec<InstRef> {
        let (start, count) = self.block_ranges[block.idx()];
        (start..start + count).map(InstRef).collect()
    }

    fn phi_incoming(&self, phi: ValueRef) -> Vec<PhiIncoming> {
        let f = self.cur_func();
        for b in &f.blocks {
            for p in &b.phis {
                if p.res.0 == phi.0 {
                    return p
                        .incoming
                        .iter()
                        .map(|(blk, v)| PhiIncoming {
                            block: BlockRef(blk.0),
                            value: ValueRef(v.0),
                        })
                        .collect();
                }
            }
        }
        Vec::new()
    }

    fn inst_operands(&self, inst: InstRef) -> Vec<ValueRef> {
        self.inst(inst)
            .operands()
            .iter()
            .map(|v| ValueRef(v.0))
            .collect()
    }

    fn inst_results(&self, inst: InstRef) -> Vec<ValueRef> {
        self.inst(inst)
            .result()
            .map(|v| vec![ValueRef(v.0)])
            .unwrap_or_default()
    }

    fn val_part_count(&self, _val: ValueRef) -> u32 {
        1
    }

    fn val_part_size(&self, val: ValueRef, _part: u32) -> u32 {
        self.cur_func().value_type(Value(val.0)).size().max(1)
    }

    fn val_part_bank(&self, val: ValueRef, _part: u32) -> RegBank {
        bank_of(self.cur_func().value_type(Value(val.0)))
    }

    fn val_is_const(&self, val: ValueRef) -> bool {
        matches!(self.cur_func().values[val.idx()].def, ValueDef::Const(_))
    }

    fn val_const_data(&self, val: ValueRef, _part: u32) -> u64 {
        match self.cur_func().values[val.idx()].def {
            ValueDef::Const(bits) => bits,
            _ => 0,
        }
    }
}

/// Helper to convert IR blocks to framework block references.
pub fn block_ref(b: Block) -> BlockRef {
    BlockRef(b.0)
}

/// Helper to convert IR values to framework value references.
pub fn value_ref(v: Value) -> ValueRef {
    ValueRef(v.0)
}
