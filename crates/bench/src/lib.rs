//! Measurement helpers shared by the `figures` binary and the Criterion
//! benches: compile-time, run-time (emulated) and code-size numbers for the
//! TPDE back-end and the baselines on the SPEC-like workloads.

use std::time::{Duration, Instant};
use tpde_core::codegen::CompileOptions;
use tpde_core::jit::link_in_memory;
use tpde_llvm::ir::Module;
use tpde_llvm::workloads::{build_workload, expected_result, spec_workloads, IrStyle, Workload};
use tpde_llvm::{compile_a64, compile_baseline, compile_copy_patch, compile_x64};
use tpde_x64emu::run_function;

/// Back-ends compared by the figures.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Backend {
    /// TPDE targeting x86-64.
    TpdeX64,
    /// TPDE targeting AArch64 (compile-time / code-size only).
    TpdeA64,
    /// The multi-pass baseline standing in for LLVM -O0.
    BaselineO0,
    /// The multi-pass baseline with extra passes, standing in for LLVM -O1.
    BaselineO1,
    /// The copy-and-patch-style compiler.
    CopyPatch,
}

impl Backend {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::TpdeX64 => "TPDE x86-64",
            Backend::TpdeA64 => "TPDE AArch64",
            Backend::BaselineO0 => "LLVM-O0-like",
            Backend::BaselineO1 => "LLVM-O1-like",
            Backend::CopyPatch => "Copy-Patch",
        }
    }
}

/// One measurement: compile time, generated text size, and the emulated
/// run-time cost (cycles) of executing `bench_main`.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Back-end measured.
    pub backend: Backend,
    /// Wall-clock compile time (best of `reps`).
    pub compile_time: Duration,
    /// Size of the .text section in bytes.
    pub text_size: u64,
    /// Emulated cycles for one execution of `bench_main(input)`; `None` for
    /// back-ends that are not executed (AArch64).
    pub cycles: Option<u64>,
    /// Whether the produced result matched the reference.
    pub correct: bool,
}

fn compile(
    backend: Backend,
    module: &Module,
    opts: &CompileOptions,
) -> (tpde_core::codebuf::CodeBuffer, Duration) {
    let start = Instant::now();
    match backend {
        Backend::TpdeX64 => {
            let c = compile_x64(module, opts).expect("tpde x64");
            (c.buf, start.elapsed())
        }
        Backend::TpdeA64 => {
            let c = compile_a64(module, opts).expect("tpde a64");
            (c.buf, start.elapsed())
        }
        Backend::BaselineO0 => {
            let c = compile_baseline(module, 0).expect("baseline");
            (c.buf, start.elapsed())
        }
        Backend::BaselineO1 => {
            let c = compile_baseline(module, 1).expect("baseline o1");
            (c.buf, start.elapsed())
        }
        Backend::CopyPatch => {
            let c = compile_copy_patch(module).expect("copy patch");
            (c.buf, start.elapsed())
        }
    }
}

/// Compiles (and for x86-64 back-ends, runs) a workload with one back-end.
pub fn measure(backend: Backend, w: &Workload, style: IrStyle, reps: u32) -> Measurement {
    let module = build_workload(w, style);
    let mut best = Duration::MAX;
    let mut buf = None;
    for _ in 0..reps.max(1) {
        let (b, t) = compile(backend, &module, &CompileOptions::default());
        if t < best {
            best = t;
        }
        buf = Some(b);
    }
    let buf = buf.unwrap();
    let text_size = buf.section_size(tpde_core::codebuf::SectionKind::Text);
    let (cycles, correct) = if backend == Backend::TpdeA64 {
        (None, true)
    } else {
        let image = link_in_memory(&buf, 0x40_0000, |_| None).expect("link");
        let (ret, stats) = run_function(&image, "bench_main", &[w.input]).expect("run");
        (Some(stats.cycles), ret == expected_result(w))
    };
    Measurement {
        backend,
        compile_time: best,
        text_size,
        cycles,
        correct,
    }
}

/// Compile-time-only measurement (used by the Criterion benches).
pub fn compile_only(backend: Backend, module: &Module) -> Duration {
    compile(backend, module, &CompileOptions::default()).1
}

/// Best-of-`reps` wall-clock parallel compile time, plus the compiled buffer
/// of the last repetition (for determinism checks against the sequential
/// output).
pub fn measure_parallel(
    module: &Module,
    threads: usize,
    reps: u32,
) -> (Duration, tpde_core::codebuf::CodeBuffer) {
    let mut best = Duration::MAX;
    let mut buf = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let c = tpde_llvm::compile_x64_parallel(module, &CompileOptions::default(), threads)
            .expect("parallel compile");
        let t = start.elapsed();
        if t < best {
            best = t;
        }
        buf = Some(c.buf);
    }
    (best, buf.unwrap())
}

/// Builds a module for a scaled-down copy of a workload (smaller inputs for
/// fast benchmarking).
pub fn scaled(w: &Workload, input: u64) -> Workload {
    Workload { input, ..w.clone() }
}

/// Builds the request mix of the `figures --service` throughput scenario:
/// every SPEC-like workload as-is (small modules, batched onto one worker)
/// plus a `shard_mult`-times enlarged copy of the largest workload (crosses
/// the service's shard threshold and spreads across the pool).
pub fn service_request_modules(shard_mult: u32) -> Vec<(String, std::sync::Arc<Module>)> {
    let mut mix: Vec<(String, std::sync::Arc<Module>)> = spec_workloads()
        .iter()
        .map(|w| {
            (
                w.name.to_string(),
                std::sync::Arc::new(build_workload(w, IrStyle::O0)),
            )
        })
        .collect();
    let base = spec_workloads()
        .into_iter()
        .max_by_key(|w| w.funcs)
        .expect("workloads");
    let big = Workload {
        funcs: base.funcs * shard_mult,
        ..base.clone()
    };
    mix.push((
        format!("{}x{shard_mult}", base.name),
        std::sync::Arc::new(build_workload(&big, IrStyle::O0)),
    ));
    mix
}

/// Geometric mean helper used when reporting speedups.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identical_values() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn measurement_runs_and_is_correct() {
        let w = scaled(&spec_workloads()[6], 500);
        for backend in [Backend::TpdeX64, Backend::CopyPatch, Backend::BaselineO0] {
            let m = measure(backend, &w, IrStyle::O0, 1);
            assert!(m.correct, "{:?} produced a wrong result", backend);
            assert!(m.text_size > 0);
            assert!(m.cycles.unwrap() > 0);
        }
        let a64 = measure(Backend::TpdeA64, &w, IrStyle::O0, 1);
        assert!(a64.text_size > 0);
    }
}
