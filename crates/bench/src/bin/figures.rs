//! Regenerates the paper's evaluation figures (5a, 5b, 6, 7, 8a, 8b) plus
//! the ablation studies, printing one table per figure.
//!
//! Usage: `cargo run -p tpde-bench --bin figures [--quick] [--json]
//! [--threads N] [--service] [--sustained] [--tiered] [--disk-cache]
//! [--chaos] [--fuzz [N]] [--fuzz-seed S] [--gate [PCT]]`
//! (`--quick` scales down the
//! workload inputs for a fast smoke run; `--json` additionally writes the
//! per-workload compile-time speedups to `BENCH_compile.json`; `--threads N`
//! also measures the function-sharded parallel pipeline on an enlarged copy
//! of the largest workload, for 1..N workers, verifying the output stays
//! byte-identical to the sequential compiler; `--service` measures the
//! persistent compile service's request throughput — modules/sec at 1/2/4
//! workers, cold vs. warm cache, byte-identity asserted per request —
//! enforcing that warm-cache repeats are at least 5× faster than cold
//! compiles; `--sustained` measures the async submission front-end under
//! sustained closed-loop load — 2× oversubscribed client threads hammer an
//! uncached service at 1/2/4 workers, once with the lock-free ring +
//! parker wakeups and once with the legacy mutex + condvar dispatcher,
//! asserting byte identity per response and that ring throughput is at
//! least 0.9× the condvar baseline at every worker count; `--tiered` runs the tiered-execution scenario — a call-heavy
//! workload executes tier-0 (instrumented copy-patch) code in the emulator
//! while a `TieringController` polls the entry counters and recompiles hot
//! functions with the LLVM-O1-like tier-1 back-end on the warm service
//! workers, redirecting callers by patching the call slots; steady-state
//! emulated throughput is reported for tier-0-only vs. tier-1-only vs.
//! tiered, asserting tiered ≥ tier-0-only and that every recompile is
//! byte-identical to a direct one-shot tier-1 compile; `--disk-cache` runs
//! the persistent-cache restart scenario — a service backed by the on-disk
//! artifact store compiles the request mix cold, is dropped (simulated
//! process exit), and a fresh service over the same directory must answer
//! every request from disk, byte-identical and without running any compile
//! path, at ≥ 3× the cold throughput (the store directory defaults to a
//! fresh temp dir; set `TPDE_DISK_CACHE_DIR` to persist it across
//! invocations, in which case a pre-warmed first pass skips the cold-side
//! assertions); `--chaos` runs the resilience scenario — an open-loop burst
//! of mixed-priority requests (interactive without deadlines, bulk with
//! tight ones) hits a disk-backed service while `tpde-core::faultpoint`
//! rules inject transient disk errors, mmap failures, lock-contention
//! delays and two worker stalls long enough to trip the watchdog; the run
//! asserts that no ticket is lost, every successful response stays
//! byte-identical to the fault-free one-shot compiler, every failure is an
//! explicit shed class (admission rejection, deadline expiry, watchdog
//! timeout), bulk traffic is shed while interactive p99 stays bounded, the
//! watchdog respawned at least one worker, transient disk I/O was retried,
//! and — after a simulated restart over the same store, and again after
//! disarming the faults — the full mix compiles byte-identically;
//! `--fuzz [N]` runs the differential fuzzing campaign — N seeded random
//! modules (default 200 quick / 1000 full) compiled through every service
//! backend kind, asserting byte identity against the one-shot compilers
//! and emulator-equal results across the executable x86-64 back-ends,
//! plus one corrupted mutant per module that the IR verifier and the
//! service must reject with a typed error; failures are minimized and
//! written to `fuzz_failures/` as seed-reproducible test cases
//! (`--fuzz-seed S` overrides the campaign seed, which is always
//! printed); `--gate` fails the
//! run when this run's compile-time geomean drops more than PCT% — default
//! 10 — below the last recorded history entry of the same mode). The JSON
//! file carries a `history` array with one geomean entry per (git commit,
//! mode): each run appends (or, for the same SHA and mode, replaces) its
//! entry instead of overwriting the trajectory, so the file records the
//! compile-time speedup across PRs; `--threads`/`--service`/`--tiered`/
//! `--disk-cache`/`--fuzz` runs add `par_tN`/`svc_*`/`tier_*`/`disk_*`/
//! `fuzz_*` fields to their entry.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tpde_bench::{geomean, measure, measure_parallel, scaled, service_request_modules, Backend};
use tpde_core::codebuf::assert_identical;
use tpde_core::codegen::CompileOptions;
use tpde_core::diskcache::DiskCacheConfig;
use tpde_core::error::Error;
use tpde_core::faultpoint::{arm, sites, FaultAction, FaultRule};
use tpde_core::jit::{link_in_memory, JitImage};
use tpde_core::service::{
    ClientId, Priority, Request, ServiceConfig, Ticket, TieringController, WakeupMode,
};
use tpde_core::timing::Phase;
use tpde_llvm::workloads::{build_workload, expected_result, spec_workloads, IrStyle};
use tpde_llvm::{
    compile_baseline, compile_copy_patch, compile_copy_patch_tiered, compile_service, compile_x64,
    LlvmCompileService, ModuleRequest, ServiceBackendKind,
};
use tpde_x64emu::{register_default_hostcalls, Machine};

/// The current git commit (short SHA), or `"unknown"` outside a checkout.
fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Extracts the per-PR history entry lines from a previously written report
/// (the lines inside the `"history": [...]` array), dropping any entry for
/// `current_sha` *in the same mode* (quick vs. full) so a re-run replaces
/// its own entry instead of duplicating it — a commit can carry one full
/// and one quick entry side by side. The dropped entry (if any) is returned
/// separately so fields the new run did not measure (e.g. `par_tN`,
/// `svc_*`) can be carried over.
fn read_history(path: &str, current_sha: &str, quick: bool) -> (Vec<String>, Option<String>) {
    let Ok(old) = std::fs::read_to_string(path) else {
        return (Vec::new(), None);
    };
    let Some(start) = old.find("\"history\": [") else {
        return (Vec::new(), None);
    };
    let sha_marker = format!("\"sha\": \"{current_sha}\"");
    let quick_marker = format!("\"quick\": {quick}");
    let mut kept = Vec::new();
    let mut replaced = None;
    for l in old[start..]
        .lines()
        .skip(1)
        .take_while(|l| l.trim_start().starts_with('{'))
        .map(|l| l.trim().trim_end_matches(',').to_string())
    {
        if l.contains(&sha_marker) && l.contains(&quick_marker) {
            replaced = Some(l);
        } else {
            kept.push(l);
        }
    }
    (kept, replaced)
}

/// Collects the `"<prefix>...": <value>` fields of a history entry line, so
/// a re-run that did not measure an optional scenario (thread scaling,
/// service throughput) keeps the previously recorded numbers instead of
/// silently erasing them.
fn salvage_fields(entry: &str, prefix: &str) -> String {
    let mut out = String::new();
    let mut rest = entry;
    while let Some(i) = rest.find(prefix) {
        let field = &rest[i..];
        let end = field
            .find([',', '}'])
            .unwrap_or(field.len())
            .min(field.len());
        out.push_str(", ");
        out.push_str(field[..end].trim());
        rest = &field[end..];
    }
    out
}

/// Reads the numeric value of `"name": <value>` from a history entry line.
fn read_field(entry: &str, name: &str) -> Option<f64> {
    let marker = format!("\"{name}\": ");
    let i = entry.find(&marker)? + marker.len();
    let rest = &entry[i..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// The bench-regression gate: compares this run's geomeans against the most
/// recent history entry of the same mode (quick runs against quick entries,
/// full against full — the absolute speedups differ between modes). Returns
/// an error message when either TPDE geomean dropped by more than
/// `threshold` percent.
fn check_regression(
    prior: &[String],
    quick: bool,
    geo: (f64, f64, f64),
    threshold: f64,
) -> Result<(), String> {
    let quick_marker = format!("\"quick\": {quick}");
    let Some(prev) = prior.iter().rev().find(|l| l.contains(&quick_marker)) else {
        println!(
            "(bench gate: no previous quick={quick} entry in history; nothing to compare against)"
        );
        return Ok(());
    };
    let prev_sha = prev
        .split("\"sha\": \"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .unwrap_or("?");
    let mut failures = Vec::new();
    for (name, new) in [("tpde_x64", geo.0), ("tpde_a64", geo.1)] {
        let Some(old) = read_field(prev, name) else {
            continue;
        };
        let drop_pct = (old - new) / old * 100.0;
        println!(
            "bench gate: {name} geomean {new:.4} vs {old:.4} at {prev_sha} ({drop_pct:+.1}% drop, limit {threshold:.0}%)"
        );
        if drop_pct > threshold {
            failures.push(format!(
                "{name} geomean regressed {drop_pct:.1}% ({old:.4} -> {new:.4}, vs {prev_sha})"
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// Thread-scaling results of the parallel pipeline (`--threads N`).
struct ParallelReport {
    workload: String,
    funcs: u32,
    seq_ms: f64,
    /// (worker count, best-of compile ms, speedup over sequential)
    points: Vec<(usize, f64, f64)>,
}

/// One worker-count measurement of the compile-service scenario.
struct ServicePoint {
    workers: usize,
    cold_ms: f64,
    warm_ms: f64,
    cold_mps: f64,
    warm_mps: f64,
    hit_rate: f64,
}

/// Request-throughput results of the persistent compile service
/// (`--service`).
struct ServiceReport {
    modules: usize,
    points: Vec<ServicePoint>,
}

/// Measures the persistent compile service: a mix of small (batched) and
/// enlarged (sharded) modules is submitted as one pipelined burst per pass,
/// cold (empty cache) and warm (every module repeated). Every response is
/// checked byte-identical against the one-shot sequential compiler, and the
/// warm pass must be at least 5× faster than the cold one.
fn service_throughput(quick: bool, worker_counts: &[usize]) -> ServiceReport {
    let mult = if quick { 8 } else { 16 };
    let mix = service_request_modules(mult);
    let opts = CompileOptions::default();
    let references: Vec<_> = mix
        .iter()
        .map(|(_, m)| compile_x64(m, &opts).expect("one-shot reference").buf)
        .collect();

    println!("\n== Compile service: pooled multi-request throughput (modules/sec)");
    println!(
        "   {} modules per pass ({} small + 1 sharded large), cold cache vs. warm cache",
        mix.len(),
        mix.len() - 1
    );
    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "workers", "cold ms", "warm ms", "cold mod/s", "warm mod/s", "hit rate", "p50 ms", "p99 ms"
    );
    let mut points = Vec::new();
    for &workers in worker_counts {
        let svc = compile_service(ServiceConfig {
            workers,
            shard_threshold: 64,
            cache_capacity: 2 * mix.len(),
            disk_cache: None,
            ..ServiceConfig::default()
        });
        let run_pass = |expect_hits: bool| -> Duration {
            let start = Instant::now();
            let tickets: Vec<_> = mix
                .iter()
                .map(|(_, m)| {
                    svc.submit(Request::new(ModuleRequest::new(
                        Arc::clone(m),
                        ServiceBackendKind::TpdeX64,
                    )))
                })
                .collect();
            let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
            let elapsed = start.elapsed();
            for ((name, _), r) in mix.iter().zip(&responses) {
                assert_eq!(
                    r.timing.cache_hit, expect_hits,
                    "{name}: unexpected cache behaviour (hit={})",
                    r.timing.cache_hit
                );
            }
            for (((name, _), r), want) in mix.iter().zip(responses).zip(&references) {
                let buf = r.module.expect(name).buf;
                assert_identical(want, &buf, &format!("service {name} workers={workers}"));
            }
            elapsed
        };
        let cold = run_pass(false);
        let mut warm = Duration::MAX;
        for _ in 0..3 {
            warm = warm.min(run_pass(true));
        }
        let stats = svc.stats();
        let cold_ms = cold.as_secs_f64() * 1000.0;
        let warm_ms = warm.as_secs_f64() * 1000.0;
        let cold_mps = mix.len() as f64 / cold.as_secs_f64();
        let warm_mps = mix.len() as f64 / warm.as_secs_f64();
        println!(
            "{workers:<10} {cold_ms:>10.3} {warm_ms:>10.3} {cold_mps:>12.0} {warm_mps:>12.0} {:>9.0}% {:>10.3} {:>10.3}",
            stats.hit_rate() * 100.0,
            stats.p50_latency.as_secs_f64() * 1000.0,
            stats.p99_latency.as_secs_f64() * 1000.0
        );
        assert!(
            warm_ms * 5.0 <= cold_ms,
            "warm-cache pass must be at least 5x faster than cold \
             (cold {cold_ms:.3} ms, warm {warm_ms:.3} ms at {workers} workers)"
        );
        points.push(ServicePoint {
            workers,
            cold_ms,
            warm_ms,
            cold_mps,
            warm_mps,
            hit_rate: stats.hit_rate(),
        });
    }
    println!("   (byte-identity vs. the one-shot compiler is asserted for every request)");
    ServiceReport {
        modules: mix.len(),
        points,
    }
}

/// One worker-count measurement of the sustained submission sweep.
struct SustainedPoint {
    workers: usize,
    ring_mps: f64,
    condvar_mps: f64,
}

/// Results of the async front-end sweep (`--sustained`).
struct SustainedReport {
    modules: usize,
    clients: usize,
    points: Vec<SustainedPoint>,
}

/// Measures sustained modules/sec through the submission front-end: several
/// client threads (each with its own `ClientId`) run a closed loop over the
/// request mix — submit one, wait, verify — once with the lock-free ring +
/// parker wake-ups and once with the legacy condvar path driving the same
/// DRR scheduler. The cache is disabled so every request actually crosses
/// the front-end (a cache hit is answered at submission and would bypass
/// it). Every response is checked byte-identical against the one-shot
/// compiler, and the ring path must not fall behind the condvar baseline at
/// any worker count.
fn sustained_submission(quick: bool, worker_counts: &[usize]) -> SustainedReport {
    let mult = if quick { 2 } else { 8 };
    // Enough closed-loop rounds that each trial runs for tens of
    // milliseconds — shorter trials measure OS scheduling, not the ring.
    let iters = if quick { 8 } else { 6 };
    let mix = service_request_modules(mult);
    let opts = CompileOptions::default();
    let references: Vec<_> = mix
        .iter()
        .map(|(_, m)| compile_x64(m, &opts).expect("one-shot reference").buf)
        .collect();

    println!("\n== Async front-end: sustained submission throughput (modules/sec)");
    println!(
        "   {} modules x{iters} rounds per client, ring vs. condvar wakeups, cache disabled",
        mix.len()
    );
    println!(
        "{:<10} {:>10} {:>14} {:>14} {:>8}",
        "workers", "clients", "ring mod/s", "condvar mod/s", "ratio"
    );

    let run_mode = |mode: WakeupMode, workers: usize, clients: usize| -> f64 {
        let svc = compile_service(ServiceConfig {
            workers,
            shard_threshold: 64,
            cache_capacity: 0,
            disk_cache: None,
            wakeup: mode,
            ..ServiceConfig::default()
        });
        let start = Instant::now();
        std::thread::scope(|scope| {
            for c in 0..clients {
                let svc = &svc;
                let mix = &mix;
                let references = &references;
                scope.spawn(move || {
                    for _ in 0..iters {
                        for (i, (name, m)) in mix.iter().enumerate() {
                            let req = Request::new(ModuleRequest::new(
                                Arc::clone(m),
                                ServiceBackendKind::TpdeX64,
                            ))
                            .client(ClientId(c as u64 + 1));
                            let buf = svc.compile(req).module.expect(name).buf;
                            assert_identical(
                                &references[i],
                                &buf,
                                &format!("sustained {name} ({mode:?}, workers={workers})"),
                            );
                        }
                    }
                });
            }
        });
        let total = clients * iters * mix.len();
        total as f64 / start.elapsed().as_secs_f64()
    };

    // Best-of-N per mode: on an oversubscribed (or single-core) host a
    // single closed-loop run is dominated by OS scheduling noise; the best
    // trial is the measurement the dispatcher actually determines.
    let trials = 5;
    let best = |mode: WakeupMode, workers: usize, clients: usize| -> f64 {
        (0..trials)
            .map(|_| run_mode(mode, workers, clients))
            .fold(0.0f64, f64::max)
    };

    let mut points = Vec::new();
    let mut clients = 0;
    for &workers in worker_counts {
        clients = (2 * workers).max(2);
        // Condvar first so the ring run cannot ride a warmer file cache.
        let condvar_mps = best(WakeupMode::Condvar, workers, clients);
        let ring_mps = best(WakeupMode::Ring, workers, clients);
        println!(
            "{workers:<10} {clients:>10} {ring_mps:>14.0} {condvar_mps:>14.0} {:>8.2}",
            ring_mps / condvar_mps
        );
        assert!(
            ring_mps >= 0.9 * condvar_mps,
            "ring path fell behind the condvar baseline at {workers} workers \
             (ring {ring_mps:.0} vs condvar {condvar_mps:.0} modules/sec)"
        );
        points.push(SustainedPoint {
            workers,
            ring_mps,
            condvar_mps,
        });
    }
    println!("   (byte-identity asserted per response; ring >= 0.9x condvar enforced)");
    SustainedReport {
        modules: mix.len(),
        clients,
        points,
    }
}

/// Results of the persistent-cache restart scenario (`--disk-cache`).
struct DiskReport {
    modules: usize,
    prewarmed: bool,
    cold_ms: f64,
    warm_ms: f64,
    cold_mps: f64,
    warm_mps: f64,
    disk_hits: u64,
    disk_misses: u64,
    disk_stores: u64,
    load_p50_ms: f64,
    load_p99_ms: f64,
}

/// The persistent-cache restart scenario: a disk-backed service compiles
/// the request mix cold (populating the artifact store as a side effect),
/// is dropped — a simulated process exit that discards the in-memory cache
/// and the worker pool — and a fresh service over the same directory must
/// then answer every request from disk: byte-identical to the one-shot
/// compiler, flagged `disk_hit`, with zero batched or sharded compiles, at
/// a warm throughput of at least 3× the cold one (all asserted).
///
/// The store lives in a fresh per-process temp directory unless
/// `TPDE_DISK_CACHE_DIR` names a persistent one. When that directory is
/// already warm from an earlier invocation (a real cross-process restart),
/// the first pass is served from disk too, so the cold-side assertions and
/// the 3× ratio are skipped — the warm-side assertions still run.
fn disk_cache_restart(quick: bool) -> DiskReport {
    let mult = if quick { 8 } else { 16 };
    let mix = service_request_modules(mult);
    let opts = CompileOptions::default();
    let references: Vec<_> = mix
        .iter()
        .map(|(_, m)| compile_x64(m, &opts).expect("one-shot reference").buf)
        .collect();

    let (dir, owned) = match std::env::var_os("TPDE_DISK_CACHE_DIR") {
        Some(d) => (std::path::PathBuf::from(d), false),
        None => {
            let d = std::env::temp_dir().join(format!("tpde-figures-disk-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&d);
            (d, true)
        }
    };
    std::fs::create_dir_all(&dir).expect("create disk cache dir");
    let prewarmed = std::fs::read_dir(&dir)
        .map(|entries| {
            entries
                .flatten()
                .any(|e| e.path().extension().is_some_and(|x| x == "tpdeart"))
        })
        .unwrap_or(false);

    let service_at = |workers: usize| {
        compile_service(ServiceConfig {
            workers,
            shard_threshold: 64,
            cache_capacity: 2 * mix.len(),
            disk_cache: Some(DiskCacheConfig::new(&dir)),
            ..ServiceConfig::default()
        })
    };
    let run_pass = |svc: &LlvmCompileService| {
        let start = Instant::now();
        let tickets: Vec<_> = mix
            .iter()
            .map(|(_, m)| {
                svc.submit(Request::new(ModuleRequest::new(
                    Arc::clone(m),
                    ServiceBackendKind::TpdeX64,
                )))
            })
            .collect();
        let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
        let elapsed = start.elapsed();
        for (((name, _), r), want) in mix.iter().zip(&responses).zip(&references) {
            let buf = &r.module.as_ref().expect(name).buf;
            assert_identical(want, buf, &format!("disk scenario {name}"));
        }
        (elapsed, responses)
    };

    println!("\n== Persistent code cache: zero-compile warm restart (modules/sec)");
    println!(
        "   {} modules per pass, store at {} ({})",
        mix.len(),
        dir.display(),
        if prewarmed {
            "pre-warmed by an earlier process"
        } else {
            "fresh"
        }
    );

    // "Process one": cold pass. On a fresh store every request compiles and
    // is persisted by the workers as a side effect.
    let svc = service_at(4);
    let (cold, responses) = run_pass(&svc);
    let cold_stats = svc.stats();
    if !prewarmed {
        for ((name, _), r) in mix.iter().zip(&responses) {
            assert!(
                !r.timing.disk_hit && !r.timing.cache_hit,
                "{name}: cold pass on a fresh store must compile"
            );
        }
        assert_eq!(
            cold_stats.disk_stores,
            mix.len() as u64,
            "every cold compile must be persisted"
        );
    }
    drop(svc); // simulated process exit: memory cache and workers are gone

    // "Process two": warm passes, each on a freshly constructed service
    // (empty in-memory cache) so every request must come from disk. Best of
    // three restarts is reported.
    let mut warm = Duration::MAX;
    let mut warm_stats = None;
    for _ in 0..3 {
        let svc = service_at(4);
        let (elapsed, responses) = run_pass(&svc);
        for ((name, _), r) in mix.iter().zip(&responses) {
            assert!(
                r.timing.disk_hit && !r.timing.cache_hit,
                "{name}: restarted process must answer from disk"
            );
        }
        let stats = svc.stats();
        assert_eq!(
            stats.batched + stats.sharded,
            0,
            "restarted process must not invoke any compile path"
        );
        assert_eq!(stats.disk_hits, mix.len() as u64);
        warm = warm.min(elapsed);
        warm_stats = Some(stats);
    }
    let warm_stats = warm_stats.unwrap();

    let cold_ms = cold.as_secs_f64() * 1000.0;
    let warm_ms = warm.as_secs_f64() * 1000.0;
    let cold_mps = mix.len() as f64 / cold.as_secs_f64();
    let warm_mps = mix.len() as f64 / warm.as_secs_f64();
    let load_p50_ms = warm_stats.disk_load_p50.as_secs_f64() * 1000.0;
    let load_p99_ms = warm_stats.disk_load_p99.as_secs_f64() * 1000.0;
    println!(
        "{:<22} {:>10} {:>10} {:>12} {:>12}",
        "pass", "cold ms", "warm ms", "cold mod/s", "warm mod/s"
    );
    println!(
        "{:<22} {cold_ms:>10.3} {warm_ms:>10.3} {cold_mps:>12.0} {warm_mps:>12.0}",
        "compile vs disk load"
    );
    println!(
        "disk cache stats: hits={} misses={} stores={} load_p50={:.3}ms load_p99={:.3}ms",
        warm_stats.disk_hits,
        cold_stats.disk_misses,
        cold_stats.disk_stores,
        load_p50_ms,
        load_p99_ms
    );
    if prewarmed {
        println!("   (pre-warmed store: cold pass was served from disk; 3x ratio not applicable)");
    } else {
        assert!(
            warm_ms * 3.0 <= cold_ms,
            "warm-disk restart must be at least 3x faster than cold compile \
             (cold {cold_ms:.3} ms, warm {warm_ms:.3} ms)"
        );
        println!("   (byte-identity, zero-compile restart and warm >= 3x cold are asserted)");
    }

    if owned {
        let _ = std::fs::remove_dir_all(&dir);
    }
    DiskReport {
        modules: mix.len(),
        prewarmed,
        cold_ms,
        warm_ms,
        cold_mps,
        warm_mps,
        disk_hits: warm_stats.disk_hits,
        disk_misses: cold_stats.disk_misses,
        disk_stores: cold_stats.disk_stores,
        load_p50_ms,
        load_p99_ms,
    }
}

/// Client identities of the chaos scenario's two submitters: the
/// interactive one whose tail latency is asserted, and the greedy bulk one
/// that is shed and preempted under pressure.
const INTERACTIVE_CLIENT: ClientId = ClientId(1);
const BULK_CLIENT: ClientId = ClientId(2);

/// Results of the resilience scenario (`--chaos`).
struct ChaosReport {
    submitted: usize,
    ok: usize,
    shed: usize,
    bulk_shed: usize,
    coalesced: u64,
    watchdog_timeouts: u64,
    workers_respawned: u64,
    disk_retries: u64,
    interactive_p99_ms: f64,
    preemptions: u64,
    ring_fallbacks: u64,
    recovered: usize,
}

/// The resilience scenario: an open-loop burst of mixed-priority requests
/// hits a small disk-backed service while armed faultpoints inject
/// transient disk I/O errors, mmap failures, lock-contention delays and two
/// worker stalls long past the hang budget. The front-end must degrade
/// explicitly, never silently: every ticket resolves, every `Ok` response
/// is byte-identical to the fault-free one-shot compiler, every `Err` is a
/// shed class (admission rejection, deadline expiry, watchdog timeout),
/// bulk traffic is shed while interactive p99 stays bounded, the watchdog
/// respawns the stalled workers, and transient disk errors are absorbed by
/// retrying. A restarted service over the same store — still under the
/// transparent disk faults — then answers the whole mix byte-identically,
/// and so does a final pass after disarming (all asserted).
fn chaos_resilience(quick: bool) -> ChaosReport {
    let mult = if quick { 8 } else { 16 };
    let mut mix = service_request_modules(mult);
    // The enlarged (sharded) module goes first: the injected stalls land on
    // its shard participants, pinning workers while the rest of the burst
    // arrives — and its round-two duplicate must coalesce onto it.
    mix.rotate_right(1);
    let opts = CompileOptions::default();
    let references: Vec<_> = mix
        .iter()
        .map(|(_, m)| compile_x64(m, &opts).expect("one-shot reference").buf)
        .collect();

    let hang = Duration::from_millis(if quick { 150 } else { 250 });
    let dir = std::env::temp_dir().join(format!("tpde-figures-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create chaos store dir");

    println!("\n== Chaos: resilient front-end under injected disk, worker and ring faults");
    println!(
        "   {} modules x2 rounds, workers=3, bulk queue cap 1, hang budget {} ms",
        mix.len(),
        hang.as_millis()
    );

    // Everything transparent is armed unbounded; the two destructive stalls
    // are limited so the run converges.
    let guard = arm(vec![
        FaultRule::new(sites::DISK_READ, FaultAction::Transient).every(4),
        FaultRule::new(sites::DISK_RENAME, FaultAction::Transient).every(3),
        FaultRule::new(sites::DISK_MMAP, FaultAction::Fail).every(3),
        FaultRule::new(
            sites::DISK_FLOCK,
            FaultAction::Delay(Duration::from_micros(500)),
        )
        .every(4),
        FaultRule::new(sites::WORKER_JOB, FaultAction::Delay(2 * hang)).limit(2),
        FaultRule::new(
            sites::WORKER_FUNC,
            FaultAction::Delay(Duration::from_micros(50)),
        )
        .every(31),
        FaultRule::new(
            sites::RING_PUBLISH,
            FaultAction::Delay(Duration::from_micros(200)),
        )
        .every(17),
        FaultRule::new(sites::RING_FULL, FaultAction::Fail).every(11),
        FaultRule::new(sites::RING_WAKEUP, FaultAction::Fail).every(13),
    ]);
    let service_at = || {
        compile_service(ServiceConfig {
            workers: 3,
            shard_threshold: 64,
            cache_capacity: 2 * mix.len(),
            disk_cache: Some(DiskCacheConfig::new(&dir)),
            queue_capacity: 4 * mix.len(),
            bulk_queue_capacity: 1,
            hang_timeout: Some(hang),
            ..ServiceConfig::default()
        })
    };

    // Round one is an un-paced burst (the sharded module and its stalled
    // shards are still in flight when everything behind it is admitted);
    // round two re-submits the same mix with flipped priorities, paced as
    // an open-loop arrival process.
    let svc = service_at();
    let mut pending: Vec<(usize, bool, Ticket)> = Vec::new();
    for round in 0..2usize {
        for (i, (_, m)) in mix.iter().enumerate() {
            let bulk = (i + round) % 2 == 1;
            // Two distinct clients: the greedy bulk one (tight deadlines,
            // sheddable) and the interactive one whose p99 is asserted.
            let req = Request::new(ModuleRequest::new(
                Arc::clone(m),
                ServiceBackendKind::TpdeX64,
            ));
            let req = if bulk {
                req.priority(Priority::Bulk)
                    .deadline(Duration::from_millis(25))
                    .client(BULK_CLIENT)
            } else {
                req.client(INTERACTIVE_CLIENT)
            };
            pending.push((i, bulk, svc.submit(req)));
            if round > 0 {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
    let submitted = pending.len();

    let (mut ok, mut shed, mut bulk_shed) = (0usize, 0usize, 0usize);
    let mut interactive_ms: Vec<f64> = Vec::new();
    for (i, bulk, ticket) in pending {
        // A lost ticket (worker died without answering) hangs forever; the
        // generous timeout turns that bug into a crisp failure.
        let r = ticket
            .by_ref()
            .wait_timeout(Duration::from_secs(60))
            .unwrap_or_else(|| panic!("chaos: lost ticket for {}", mix[i].0));
        match r.module {
            Ok(m) => {
                assert_identical(
                    &references[i],
                    &m.buf,
                    &format!("chaos {} (bulk={bulk})", mix[i].0),
                );
                if !bulk {
                    interactive_ms.push(r.timing.total.as_secs_f64() * 1000.0);
                }
                ok += 1;
            }
            Err(Error::Rejected { .. } | Error::DeadlineExceeded | Error::Timeout(_)) => {
                shed += 1;
                if bulk {
                    bulk_shed += 1;
                }
            }
            Err(e) => panic!("chaos: unexpected error class for {}: {e}", mix[i].0),
        }
    }
    assert_eq!(ok + shed, submitted, "every ticket resolves exactly once");

    interactive_ms.sort_by(f64::total_cmp);
    let interactive_p99_ms = interactive_ms
        .get(((interactive_ms.len() as f64 * 0.99).ceil() as usize).saturating_sub(1))
        .copied()
        .unwrap_or(0.0);
    // The bound is generous (it covers the full injected stall plus queue
    // drain) but finite: interactive latency must not absorb the bulk
    // backlog or the 60 s lost-ticket horizon.
    assert!(
        interactive_p99_ms < 20_000.0,
        "interactive p99 must stay bounded under faults ({interactive_p99_ms:.1} ms)"
    );
    let s = svc.stats();
    assert!(
        s.watchdog_timeouts >= 1,
        "the stalls must trip the watchdog"
    );
    assert!(s.workers_respawned >= 1, "condemned workers must respawn");
    assert!(s.disk_retries >= 1, "transient disk faults must be retried");
    assert!(
        s.coalesced >= 1,
        "the duplicated in-flight module coalesces"
    );
    assert!(bulk_shed >= 1, "bulk traffic must be shed under pressure");
    println!(
        "   burst: {ok}/{submitted} ok, {shed} shed ({bulk_shed} bulk), \
         interactive p99 {interactive_p99_ms:.1} ms"
    );
    println!(
        "   faults absorbed: disk_retries={} coalesced={} watchdog_timeouts={} respawned={}",
        s.disk_retries, s.coalesced, s.watchdog_timeouts, s.workers_respawned
    );
    println!(
        "   front-end: preemptions={} ring_fallbacks={}",
        s.preemptions, s.ring_fallbacks
    );
    for cs in &s.clients {
        println!(
            "   client {}: completed={} shed={} preemptions={} p50 {:.1} ms p99 {:.1} ms",
            cs.client,
            cs.completed,
            cs.shed,
            cs.preemptions,
            cs.p50_latency.as_secs_f64() * 1000.0,
            cs.p99_latency.as_secs_f64() * 1000.0
        );
    }
    assert!(
        s.clients.iter().any(|c| c.client == INTERACTIVE_CLIENT.0)
            && s.clients.iter().any(|c| c.client == BULK_CLIENT.0),
        "per-client stats must track both chaos submitters"
    );
    drop(svc); // simulated crash-restart: memory cache and workers are gone

    // Restarted process, faults still armed: only transparent rules remain
    // live (the stall budget is spent), so the full mix must now succeed —
    // from disk where the first pass stored artifacts, recompiled where the
    // watchdog discarded the poisoned result — byte for byte.
    let svc = service_at();
    let mut recovered = 0usize;
    for ((name, m), want) in mix.iter().zip(&references) {
        let r = svc.compile(Request::new(ModuleRequest::new(
            Arc::clone(m),
            ServiceBackendKind::TpdeX64,
        )));
        let got = r
            .module
            .unwrap_or_else(|e| panic!("chaos restart: {name}: {e}"));
        assert_identical(want, &got.buf, &format!("chaos restart {name}"));
        recovered += 1;
    }
    println!(
        "   restart under transparent faults: {recovered}/{} ok",
        mix.len()
    );

    // Disarmed, the same service answers the full mixed-priority mix with
    // zero faults in the path — nothing the chaos pass did may have left
    // sticky damage behind.
    drop(guard);
    for (i, (name, m)) in mix.iter().enumerate() {
        let class = if i % 2 == 1 {
            Priority::Bulk
        } else {
            Priority::Interactive
        };
        let r = svc.compile(
            Request::new(ModuleRequest::new(
                Arc::clone(m),
                ServiceBackendKind::TpdeX64,
            ))
            .priority(class),
        );
        let got = r
            .module
            .unwrap_or_else(|e| panic!("chaos disarmed: {name}: {e}"));
        assert_identical(&references[i], &got.buf, &format!("chaos disarmed {name}"));
    }
    println!("   (no lost tickets, explicit shed classes, byte-identity and recovery asserted)");

    let _ = std::fs::remove_dir_all(&dir);
    ChaosReport {
        submitted,
        ok,
        shed,
        bulk_shed,
        coalesced: s.coalesced,
        watchdog_timeouts: s.watchdog_timeouts,
        workers_respawned: s.workers_respawned,
        disk_retries: s.disk_retries,
        interactive_p99_ms,
        preemptions: s.preemptions,
        ring_fallbacks: s.ring_fallbacks,
        recovered,
    }
}

/// Results of the tiered-execution scenario (`--tiered`): steady-state
/// emulated execution throughput in `bench_main` iterations per giga-cycle.
struct TieredReport {
    workload: String,
    funcs: usize,
    threshold: u64,
    warmup_iters: u32,
    promotions: u64,
    tier0_ipgc: f64,
    tier1_ipgc: f64,
    tiered_ipgc: f64,
}

/// Loads `image` into a fresh machine and measures steady-state execution:
/// one warm-up call of `bench_main(input)`, then `iters` timed calls, each
/// checked against the reference result. Returns the emulated cycle count of
/// the timed calls.
fn steady_cycles(image: &JitImage, input: u64, expected: u64, iters: u32) -> u64 {
    let mut m = Machine::new();
    m.load_image(image);
    register_default_hostcalls(&mut m, image);
    let addr = image.symbol_addr("bench_main").expect("bench_main");
    assert_eq!(m.call(addr, &[input]).expect("warmup"), expected);
    m.reset_stats();
    for _ in 0..iters {
        assert_eq!(m.call(addr, &[input]).expect("steady run"), expected);
    }
    m.stats().cycles
}

/// The tiered-execution scenario: the call-heavy `620.omnetpp` workload runs
/// as tier-0 code (instrumented copy-patch: entry counters + slot-routed
/// calls) in the emulator while a [`TieringController`] polls the counters
/// after every iteration. Functions crossing the threshold are recompiled
/// with the LLVM-O1-like tier-1 back-end on the warm service workers and
/// their callers redirected by patching the call slots; once `bench_main`
/// itself is promoted, the top-level dispatch switches to its tier-1 entry.
/// Steady-state throughput is then compared against tier-0-only and
/// tier-1-only runs: tiered must be at least as fast as tier-0-only, and the
/// tier-1 recompile must be byte-identical to a direct one-shot tier-1
/// compile (both asserted).
fn tiered_execution(quick: bool) -> TieredReport {
    let base = spec_workloads()
        .into_iter()
        .find(|w| w.name == "620.omnetpp")
        .expect("call-heavy workload");
    let scale = if quick { 2_000 } else { 50_000 };
    let w = scaled(&base, base.input.min(scale));
    let module = Arc::new(build_workload(&w, IrStyle::O0));
    let expected = expected_result(&w);
    let nfuncs = module.funcs.len();
    let threshold = 3u64;
    let steady_iters = if quick { 5 } else { 10 };

    // One-shot references: the tier-0 and tier-1 compiles the service
    // responses must match byte for byte.
    let tier0_ref = compile_copy_patch_tiered(&module)
        .expect("tier-0 compile")
        .buf;
    let tier1_ref = compile_baseline(&module, 1).expect("tier-1 compile").buf;

    // Baseline runs: each tier on its own.
    let tier0_cycles = steady_cycles(
        &link_in_memory(&tier0_ref, 0x40_0000, |_| None).expect("link tier-0"),
        w.input,
        expected,
        steady_iters,
    );
    let tier1_cycles = steady_cycles(
        &link_in_memory(&tier1_ref, 0x40_0000, |_| None).expect("link tier-1"),
        w.input,
        expected,
        steady_iters,
    );

    // Tiered run. The service workers are warmed by the initial tier-0
    // request; the tier-1 recompile later lands on the same warm pool.
    let svc = compile_service(ServiceConfig {
        workers: 2,
        shard_threshold: 64,
        cache_capacity: 8,
        disk_cache: None,
        ..ServiceConfig::default()
    });
    let tier0_buf = svc
        .compile(Request::new(ModuleRequest::new(
            Arc::clone(&module),
            ServiceBackendKind::CopyPatchTier0,
        )))
        .module
        .expect("service tier-0 compile")
        .buf;
    assert_identical(&tier0_ref, &tier0_buf, "service tier-0 vs one-shot");
    let mut tier0_image = link_in_memory(&tier0_buf, 0x40_0000, |_| None).expect("link tier-0");
    assert_eq!(tier0_image.tier_func_count(), Some(nfuncs));
    let counter_addrs: Vec<u64> = (0..nfuncs as u32)
        .map(|f| tier0_image.tier_counter_addr(f).expect("counter"))
        .collect();

    let mut m = Machine::new();
    m.load_image(&tier0_image);
    register_default_hostcalls(&mut m, &tier0_image);
    let mut entry = tier0_image.symbol_addr("bench_main").expect("bench_main");

    let mut controller = TieringController::new(nfuncs, threshold);
    let mut tier1_image: Option<JitImage> = None;
    let mut warmup_iters = 0u32;
    while !controller.all_promoted() {
        warmup_iters += 1;
        assert!(
            warmup_iters <= 4 * threshold as u32,
            "tiering did not converge after {warmup_iters} iterations"
        );
        assert_eq!(m.call(entry, &[w.input]).expect("tier-0 run"), expected);
        // Snapshot the counters from guest memory (tier-0 code increments
        // its own copy), then promote everything over the threshold.
        let counters: Vec<u64> = counter_addrs.iter().map(|&a| m.mem.read(a, 8)).collect();
        controller
            .poll(
                |f| counters[f as usize],
                |f| {
                    if tier1_image.is_none() {
                        // First hot function: tier-1 recompile of the module
                        // on the warm workers, byte-identity checked against
                        // the one-shot compile.
                        let buf = svc
                            .compile(Request::new(ModuleRequest::new(
                                Arc::clone(&module),
                                ServiceBackendKind::BaselineO1,
                            )))
                            .module
                            .expect("service tier-1 recompile")
                            .buf;
                        assert_identical(&tier1_ref, &buf, "tier-1 recompile vs one-shot");
                        let img = link_in_memory(&buf, 0x80_0000, |_| None).expect("link tier-1");
                        m.load_image(&img);
                        register_default_hostcalls(&mut m, &img);
                        tier1_image = Some(img);
                    }
                    let target = tier1_image
                        .as_ref()
                        .expect("tier-1 image")
                        .symbol_addr(&module.funcs[f as usize].name)
                        .expect("tier-1 symbol");
                    m.apply_call_patch(&mut tier0_image, f, target)
                        .map_err(|e| tpde_core::error::Error::Emit(e.to_string()))?;
                    Ok(())
                },
            )
            .expect("promotion");
        // `bench_main` has no slot-routed caller (the host dispatches it
        // directly), so its promotion switches the top-level entry instead.
        if controller.is_promoted(nfuncs as u32 - 1) {
            if let Some(img) = &tier1_image {
                entry = img.symbol_addr("bench_main").expect("bench_main tier-1");
            }
        }
    }
    assert_eq!(controller.promotions(), nfuncs as u64);
    m.reset_stats();
    for _ in 0..steady_iters {
        assert_eq!(m.call(entry, &[w.input]).expect("tiered run"), expected);
    }
    let tiered_cycles = m.stats().cycles;

    let ipgc = |cycles: u64| steady_iters as f64 * 1e9 / cycles as f64;
    let report = TieredReport {
        workload: base.name.to_string(),
        funcs: nfuncs,
        threshold,
        warmup_iters,
        promotions: controller.promotions(),
        tier0_ipgc: ipgc(tier0_cycles),
        tier1_ipgc: ipgc(tier1_cycles),
        tiered_ipgc: ipgc(tiered_cycles),
    };
    println!("\n== Tiered execution: profile-guided recompilation with patchable call sites");
    println!(
        "   {} ({} functions), threshold {} entries, {} promotions in {} warm-up iterations",
        report.workload, report.funcs, report.threshold, report.promotions, report.warmup_iters
    );
    println!("{:<44} {:>16}", "configuration", "iters/Gcycle");
    println!(
        "{:<44} {:>16.2}",
        "tier-0 only (instrumented copy-patch)", report.tier0_ipgc
    );
    println!(
        "{:<44} {:>16.2}",
        "tier-1 only (LLVM-O1-like)", report.tier1_ipgc
    );
    println!(
        "{:<44} {:>16.2}",
        "tiered (tier-0, hot functions patched)", report.tiered_ipgc
    );
    assert!(
        tiered_cycles <= tier0_cycles,
        "tiered steady state ({tiered_cycles} cycles) must not be slower than \
         tier-0 only ({tier0_cycles} cycles)"
    );
    println!("   (tier-1 recompiles byte-identical to one-shot; tiered >= tier-0-only asserted)");
    report
}

/// Results of the differential fuzzing campaign (`--fuzz`).
struct FuzzScenarioReport {
    modules: usize,
    total_insts: usize,
    mutants_rejected: u64,
    executed: usize,
    compared: usize,
}

/// Executes `bench_main(input)` from a compiled buffer under an
/// instruction budget, so a buggy candidate that loops forever reports a
/// timeout instead of hanging the campaign.
fn fuzz_exec(
    buf: &tpde_core::codebuf::CodeBuffer,
    input: u64,
    max_insts: u64,
) -> Result<u64, String> {
    let image = link_in_memory(buf, 0x40_0000, |_| None).map_err(|e| e.to_string())?;
    let mut m = Machine::new();
    m.max_insts = max_insts;
    m.load_image(&image);
    register_default_hostcalls(&mut m, &image);
    let addr = image
        .symbol_addr("bench_main")
        .ok_or_else(|| "no bench_main symbol".to_string())?;
    m.call(addr, &[input]).map_err(|e| format!("{e:?}"))
}

/// Runs the differential fuzzing campaign (`--fuzz [N]`): `n` seeded
/// random modules through every service backend kind (byte identity
/// against the one-shot compilers — the whole AArch64 check — plus
/// emulator-equal results across the executable x86-64 kinds) and one
/// corrupted mutant per module, which the verifier and the service must
/// reject with a typed error. Result-mismatch failures are re-minimized
/// and every failure is written to `fuzz_failures/` as a reproducer
/// (`gen_module(seed)` rebuilds the input) before the run aborts.
fn fuzz_campaign(n: usize, seed: u64) -> FuzzScenarioReport {
    use tpde_llvm::fuzz::{self, FuzzConfig};
    println!("\n== Fuzz: differential campaign, {n} random modules, seed {seed:#x}");
    let cfg = FuzzConfig {
        modules: n,
        seed,
        mutants_per_module: 1,
        workers: 3,
    };
    let rep = fuzz::run_fuzz(&cfg, &|b, i| fuzz_exec(b, i, 100_000_000));
    println!("   {}", rep.summary());
    println!(
        "   service: {} invalid rejected at admission, {} backend panics, {} respawns",
        rep.rejected_invalid, rep.panics_backend, rep.workers_respawned
    );
    if !rep.failures.is_empty() {
        let dir = std::path::Path::new("fuzz_failures");
        let _ = std::fs::create_dir_all(dir);
        for (i, f) in rep.failures.iter().enumerate() {
            println!("   FAILURE seed {:#x}: {} ({})", f.seed, f.kind, f.detail);
            let mut ir = f.ir.clone();
            if f.kind == "result mismatch" {
                // Shrink while any executable pair still disagrees, so the
                // reproducer is a few instructions instead of a whole module.
                let input = f.seed & 0x3F;
                let mut differs = |m: &tpde_llvm::ir::Module| -> bool {
                    let mut first: Option<u64> = None;
                    for kind in fuzz::EXEC_KINDS {
                        let Ok(buf) = fuzz::one_shot_buf(m, kind) else {
                            return false;
                        };
                        let Ok(r) = fuzz_exec(&buf, input, 200_000) else {
                            return false;
                        };
                        match first {
                            None => first = Some(r),
                            Some(r0) if r0 != r => return true,
                            Some(_) => {}
                        }
                    }
                    false
                };
                let full = fuzz::gen_module(f.seed);
                let small = fuzz::minimize(&full, &mut differs, 400);
                if differs(&small) {
                    ir = small.dump();
                }
            }
            let path = dir.join(format!("fuzz_{i:03}_{:016x}.txt", f.seed));
            let _ = std::fs::write(
                &path,
                format!(
                    "seed: {:#x}\nkind: {}\ndetail: {}\n\n{}\n",
                    f.seed, f.kind, f.detail, ir
                ),
            );
        }
        println!(
            "   wrote {} reproducer(s) to fuzz_failures/",
            rep.failures.len()
        );
    }
    assert!(
        rep.ok(),
        "fuzz campaign found {} failure(s); reproducers in fuzz_failures/",
        rep.failures.len()
    );
    FuzzScenarioReport {
        modules: rep.modules,
        total_insts: rep.total_insts,
        mutants_rejected: rep.rejected_invalid,
        executed: rep.executed,
        compared: rep.compared,
    }
}

/// Writes the machine-readable compile-time speedup report, appending this
/// run's geomeans to the per-commit history carried over from the previous
/// report.
///
/// Hand-rolled JSON (the container has no serde); numbers use enough digits
/// for diffing across PRs.
#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    quick: bool,
    rows: &[(&str, f64, f64, f64)],
    geo: (f64, f64, f64),
    par: Option<&ParallelReport>,
    service: Option<&ServiceReport>,
    sustained: Option<&SustainedReport>,
    tiered: Option<&TieredReport>,
    disk: Option<&DiskReport>,
    chaos: Option<&ChaosReport>,
    fuzz: Option<&FuzzScenarioReport>,
) -> std::io::Result<Vec<String>> {
    use std::fmt::Write as _;
    let sha = git_sha();
    let (mut history, replaced) = read_history(path, &sha, quick);
    let prior = history.clone();
    let mut entry = format!(
        "{{\"sha\": \"{sha}\", \"quick\": {quick}, \"tpde_x64\": {:.4}, \"tpde_a64\": {:.4}, \"copy_patch\": {:.4}",
        geo.0, geo.1, geo.2
    );
    match par {
        Some(p) => {
            for (t, _, speedup) in &p.points {
                let _ = write!(entry, ", \"par_t{t}\": {speedup:.4}");
            }
        }
        // no thread scaling this run: keep the same-SHA entry's numbers
        None => {
            if let Some(old) = &replaced {
                entry.push_str(&salvage_fields(old, "\"par_t"));
            }
        }
    }
    match service {
        Some(s) => {
            if let Some(p) = s.points.last() {
                let _ = write!(
                    entry,
                    ", \"svc_t{}_cold_mps\": {:.1}, \"svc_t{}_warm_mps\": {:.1}",
                    p.workers, p.cold_mps, p.workers, p.warm_mps
                );
            }
        }
        None => {
            if let Some(old) = &replaced {
                entry.push_str(&salvage_fields(old, "\"svc_"));
            }
        }
    }
    match sustained {
        Some(s) => {
            if let Some(p) = s.points.last() {
                let _ = write!(
                    entry,
                    ", \"sust_t{}_ring_mps\": {:.1}, \"sust_t{}_cv_mps\": {:.1}",
                    p.workers, p.ring_mps, p.workers, p.condvar_mps
                );
            }
        }
        // no sustained sweep this run: keep the same-SHA entry's numbers
        None => {
            if let Some(old) = &replaced {
                entry.push_str(&salvage_fields(old, "\"sust_"));
            }
        }
    }
    match tiered {
        Some(t) => {
            let _ = write!(
                entry,
                ", \"tier_t0_ipgc\": {:.2}, \"tier_t1_ipgc\": {:.2}, \"tier_tiered_ipgc\": {:.2}",
                t.tier0_ipgc, t.tier1_ipgc, t.tiered_ipgc
            );
        }
        // no tiered scenario this run: keep the same-SHA entry's numbers
        None => {
            if let Some(old) = &replaced {
                entry.push_str(&salvage_fields(old, "\"tier_"));
            }
        }
    }
    match disk {
        Some(d) => {
            let _ = write!(
                entry,
                ", \"disk_cold_mps\": {:.1}, \"disk_warm_mps\": {:.1}",
                d.cold_mps, d.warm_mps
            );
        }
        // no disk-cache scenario this run: keep the same-SHA entry's numbers
        None => {
            if let Some(old) = &replaced {
                entry.push_str(&salvage_fields(old, "\"disk_"));
            }
        }
    }
    match chaos {
        Some(c) => {
            let _ = write!(
                entry,
                ", \"chaos_ok\": {}, \"chaos_shed\": {}, \"chaos_disk_retries\": {}, \
                 \"chaos_respawned\": {}, \"chaos_p99_ms\": {:.1}",
                c.ok, c.shed, c.disk_retries, c.workers_respawned, c.interactive_p99_ms
            );
        }
        // no chaos scenario this run: keep the same-SHA entry's numbers
        None => {
            if let Some(old) = &replaced {
                entry.push_str(&salvage_fields(old, "\"chaos_"));
            }
        }
    }
    match fuzz {
        Some(f) => {
            let _ = write!(
                entry,
                ", \"fuzz_modules\": {}, \"fuzz_insts\": {}, \"fuzz_mutants_rejected\": {}, \
                 \"fuzz_execs\": {}, \"fuzz_compared\": {}",
                f.modules, f.total_insts, f.mutants_rejected, f.executed, f.compared
            );
        }
        // no fuzz campaign this run: keep the same-SHA entry's numbers
        None => {
            if let Some(old) = &replaced {
                entry.push_str(&salvage_fields(old, "\"fuzz_"));
            }
        }
    }
    entry.push('}');
    history.push(entry);

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"figure\": \"5a_compile_speedup_over_llvm_o0_like\",\n  \"quick\": {quick},"
    );
    out.push_str("  \"workloads\": [\n");
    for (i, (name, x64, a64, cp)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{name}\", \"tpde_x64\": {x64:.4}, \"tpde_a64\": {a64:.4}, \"copy_patch\": {cp:.4}}}{comma}"
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"geomean\": {{\"tpde_x64\": {:.4}, \"tpde_a64\": {:.4}, \"copy_patch\": {:.4}}},",
        geo.0, geo.1, geo.2
    );
    if let Some(p) = par {
        let _ = writeln!(
            out,
            "  \"parallel\": {{\"workload\": \"{}\", \"funcs\": {}, \"seq_ms\": {:.4}, \"points\": [",
            p.workload, p.funcs, p.seq_ms
        );
        for (i, (t, ms, speedup)) in p.points.iter().enumerate() {
            let comma = if i + 1 < p.points.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"threads\": {t}, \"ms\": {ms:.4}, \"speedup\": {speedup:.4}}}{comma}"
            );
        }
        out.push_str("  ]},\n");
    }
    if let Some(s) = service {
        let _ = writeln!(
            out,
            "  \"service\": {{\"modules\": {}, \"points\": [",
            s.modules
        );
        for (i, p) in s.points.iter().enumerate() {
            let comma = if i + 1 < s.points.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"workers\": {}, \"cold_ms\": {:.4}, \"warm_ms\": {:.4}, \"cold_mps\": {:.1}, \"warm_mps\": {:.1}, \"hit_rate\": {:.4}}}{comma}",
                p.workers, p.cold_ms, p.warm_ms, p.cold_mps, p.warm_mps, p.hit_rate
            );
        }
        out.push_str("  ]},\n");
    }
    if let Some(t) = tiered {
        let _ = writeln!(
            out,
            "  \"tiered\": {{\"workload\": \"{}\", \"funcs\": {}, \"threshold\": {}, \
             \"warmup_iters\": {}, \"promotions\": {}, \"tier0_ipgc\": {:.2}, \
             \"tier1_ipgc\": {:.2}, \"tiered_ipgc\": {:.2}}},",
            t.workload,
            t.funcs,
            t.threshold,
            t.warmup_iters,
            t.promotions,
            t.tier0_ipgc,
            t.tier1_ipgc,
            t.tiered_ipgc
        );
    }
    if let Some(d) = disk {
        let _ = writeln!(
            out,
            "  \"disk\": {{\"modules\": {}, \"prewarmed\": {}, \"cold_ms\": {:.4}, \
             \"warm_ms\": {:.4}, \"cold_mps\": {:.1}, \"warm_mps\": {:.1}, \"hits\": {}, \
             \"misses\": {}, \"stores\": {}, \"load_p50_ms\": {:.4}, \"load_p99_ms\": {:.4}}},",
            d.modules,
            d.prewarmed,
            d.cold_ms,
            d.warm_ms,
            d.cold_mps,
            d.warm_mps,
            d.disk_hits,
            d.disk_misses,
            d.disk_stores,
            d.load_p50_ms,
            d.load_p99_ms
        );
    }
    if let Some(c) = chaos {
        let _ = writeln!(
            out,
            "  \"chaos\": {{\"submitted\": {}, \"ok\": {}, \"shed\": {}, \"bulk_shed\": {}, \
             \"coalesced\": {}, \"watchdog_timeouts\": {}, \"workers_respawned\": {}, \
             \"disk_retries\": {}, \"interactive_p99_ms\": {:.1}, \"preemptions\": {}, \
             \"ring_fallbacks\": {}, \"recovered\": {}}},",
            c.submitted,
            c.ok,
            c.shed,
            c.bulk_shed,
            c.coalesced,
            c.watchdog_timeouts,
            c.workers_respawned,
            c.disk_retries,
            c.interactive_p99_ms,
            c.preemptions,
            c.ring_fallbacks,
            c.recovered
        );
    }
    if let Some(s) = sustained {
        let mut pts = String::new();
        for p in &s.points {
            if !pts.is_empty() {
                pts.push_str(", ");
            }
            let _ = write!(
                pts,
                "{{\"workers\": {}, \"ring_mps\": {:.1}, \"condvar_mps\": {:.1}}}",
                p.workers, p.ring_mps, p.condvar_mps
            );
        }
        let _ = writeln!(
            out,
            "  \"sustained\": {{\"modules\": {}, \"clients\": {}, \"points\": [{pts}]}},",
            s.modules, s.clients
        );
    }
    out.push_str("  \"history\": [\n");
    for (i, entry) in history.iter().enumerate() {
        let comma = if i + 1 < history.len() { "," } else { "" };
        let _ = writeln!(out, "    {entry}{comma}");
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    std::fs::write(path, out)?;
    Ok(prior)
}

/// Measures the thread-scaling curve of the parallel pipeline on an
/// enlarged copy of the largest workload (more cloned hot functions, so the
/// per-compile work is large enough to amortize worker startup), verifying
/// the parallel text stays byte-identical to the sequential compiler.
fn thread_scaling(quick: bool, max_threads: usize) -> ParallelReport {
    let base = spec_workloads()
        .into_iter()
        .max_by_key(|w| w.funcs)
        .expect("workloads");
    let mult = if quick { 8 } else { 32 };
    let w = tpde_llvm::workloads::Workload {
        funcs: base.funcs * mult,
        ..base
    };
    let module = build_workload(&w, IrStyle::O0);
    let reps = 3;
    let mut seq_best = std::time::Duration::MAX;
    let mut seq_buf = None;
    for _ in 0..reps {
        let start = Instant::now();
        let c = compile_x64(&module, &CompileOptions::default()).expect("sequential compile");
        seq_best = seq_best.min(start.elapsed());
        seq_buf = Some(c.buf);
    }
    let seq_buf = seq_buf.unwrap();
    let seq_ms = seq_best.as_secs_f64() * 1000.0;

    println!("\n== Thread scaling: function-sharded parallel compilation");
    println!(
        "   workload {} x{mult} funcs = {} functions, sequential compile {:.3} ms (best of {reps})",
        base.name, w.funcs, seq_ms
    );
    println!("{:<10} {:>12} {:>12}", "workers", "compile ms", "speedup");
    let mut counts = Vec::new();
    let mut t = 1;
    while t < max_threads {
        counts.push(t);
        t *= 2;
    }
    counts.push(max_threads);
    let mut points = Vec::new();
    for &t in &counts {
        let (best, buf) = measure_parallel(&module, t, reps);
        assert_identical(&seq_buf, &buf, &format!("{t} workers"));
        let ms = best.as_secs_f64() * 1000.0;
        let speedup = seq_ms / ms;
        println!("{t:<10} {ms:>12.3} {speedup:>11.2}x");
        points.push((t, ms, speedup));
    }
    println!("   (scaling is bounded by the host's cores; determinism is checked every run)");
    ParallelReport {
        workload: base.name.to_string(),
        funcs: w.funcs,
        seq_ms,
        points,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let service = args.iter().any(|a| a == "--service");
    let sustained = args.iter().any(|a| a == "--sustained");
    let tiered = args.iter().any(|a| a == "--tiered");
    let disk = args.iter().any(|a| a == "--disk-cache");
    let chaos = args.iter().any(|a| a == "--chaos");
    // `--fuzz` takes an optional module count (defaults scale with the
    // mode); `--fuzz-seed` overrides the fixed campaign seed, e.g. with a
    // time-derived one in the scheduled CI job (the seed is printed, so
    // any failure is reproducible).
    let fuzz_n: Option<usize> = args.iter().position(|a| a == "--fuzz").map(|i| {
        args.get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or(if quick { 200 } else { 1000 })
    });
    let fuzz_seed: u64 = args
        .iter()
        .position(|a| a == "--fuzz-seed")
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            let parsed = match v.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => v.parse().ok(),
            };
            parsed.unwrap_or_else(|| {
                eprintln!("--fuzz-seed requires a u64 (decimal or 0x-hex)");
                std::process::exit(2);
            })
        })
        .unwrap_or(0xC60_2026);
    let threads: Option<usize> = args.iter().position(|a| a == "--threads").map(|i| {
        args.get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--threads requires a positive integer worker count");
                std::process::exit(2);
            })
    });
    // `--gate` takes an optional drop threshold in percent (default 10).
    let gate: Option<f64> = args.iter().position(|a| a == "--gate").map(|i| {
        args.get(i + 1)
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(10.0)
    });
    let scale = if quick { 2_000 } else { 50_000 };
    let workloads: Vec<_> = spec_workloads()
        .iter()
        .map(|w| scaled(w, w.input.min(scale)))
        .collect();

    // ------------------------------------------------------------------ fig 5a/5b/7
    println!("== Figure 5a: back-end compile-time speedup over LLVM-O0-like (unoptimized IR)");
    println!(
        "{:<16} {:>12} {:>12} {:>12}",
        "benchmark", "TPDE x86-64", "TPDE AArch64", "Copy-Patch"
    );
    let mut sp_x64 = Vec::new();
    let mut sp_a64 = Vec::new();
    let mut sp_cp = Vec::new();
    let mut json_rows: Vec<(&str, f64, f64, f64)> = Vec::new();
    let mut run_rows = Vec::new();
    let mut size_rows = Vec::new();
    for w in &workloads {
        let base = measure(Backend::BaselineO0, w, IrStyle::O0, 3);
        let tpde = measure(Backend::TpdeX64, w, IrStyle::O0, 3);
        let a64 = measure(Backend::TpdeA64, w, IrStyle::O0, 3);
        let cp = measure(Backend::CopyPatch, w, IrStyle::O0, 3);
        assert!(
            base.correct && tpde.correct && cp.correct,
            "incorrect code for {}",
            w.name
        );
        let s_x = base.compile_time.as_secs_f64() / tpde.compile_time.as_secs_f64();
        let s_a = base.compile_time.as_secs_f64() / a64.compile_time.as_secs_f64();
        let s_c = base.compile_time.as_secs_f64() / cp.compile_time.as_secs_f64();
        println!(
            "{:<16} {:>11.2}x {:>11.2}x {:>11.2}x",
            w.name, s_x, s_a, s_c
        );
        sp_x64.push(s_x);
        sp_a64.push(s_a);
        sp_cp.push(s_c);
        json_rows.push((w.name, s_x, s_a, s_c));
        run_rows.push((
            w.name,
            base.cycles.unwrap() as f64 / tpde.cycles.unwrap() as f64,
            base.cycles.unwrap() as f64 / cp.cycles.unwrap() as f64,
        ));
        size_rows.push((
            w.name,
            tpde.text_size as f64 / base.text_size as f64,
            cp.text_size as f64 / base.text_size as f64,
            a64.text_size,
        ));
    }
    println!(
        "{:<16} {:>11.2}x {:>11.2}x {:>11.2}x   (geomean)",
        "geomean",
        geomean(&sp_x64),
        geomean(&sp_a64),
        geomean(&sp_cp)
    );
    let par_report = threads.map(|n| thread_scaling(quick, n.max(1)));
    let service_report = service.then(|| service_throughput(quick, &[1, 2, 4]));
    let sustained_report = sustained
        .then(|| sustained_submission(quick, if quick { &[1, 2][..] } else { &[1, 2, 4][..] }));
    let tiered_report = tiered.then(|| tiered_execution(quick));
    let disk_report = disk.then(|| disk_cache_restart(quick));
    let chaos_report = chaos.then(|| chaos_resilience(quick));
    let fuzz_report = fuzz_n.map(|n| fuzz_campaign(n, fuzz_seed));
    let geo = (geomean(&sp_x64), geomean(&sp_a64), geomean(&sp_cp));
    // The gate compares against the committed history; only `--json` runs
    // rewrite the report file.
    let prior = if json {
        match write_json(
            "BENCH_compile.json",
            quick,
            &json_rows,
            geo,
            par_report.as_ref(),
            service_report.as_ref(),
            sustained_report.as_ref(),
            tiered_report.as_ref(),
            disk_report.as_ref(),
            chaos_report.as_ref(),
            fuzz_report.as_ref(),
        ) {
            Ok(prior) => {
                println!("(wrote BENCH_compile.json)");
                Some(prior)
            }
            Err(e) => {
                eprintln!("failed to write BENCH_compile.json: {e}");
                None
            }
        }
    } else {
        gate.map(|_| read_history("BENCH_compile.json", &git_sha(), quick).0)
    };
    if let (Some(threshold), Some(prior)) = (gate, prior.as_ref()) {
        if let Err(msg) = check_regression(prior, quick, geo, threshold) {
            eprintln!("bench gate FAILED: {msg}");
            std::process::exit(1);
        }
        println!("bench gate passed");
    }

    println!(
        "\n== Figure 5b: run-time speedup of generated code over LLVM-O0-like (emulated cycles)"
    );
    println!(
        "{:<16} {:>12} {:>12}",
        "benchmark", "TPDE x86-64", "Copy-Patch"
    );
    let mut rt_tpde = Vec::new();
    let mut rt_cp = Vec::new();
    for (name, t, c) in &run_rows {
        println!("{:<16} {:>11.2}x {:>11.2}x", name, t, c);
        rt_tpde.push(*t);
        rt_cp.push(*c);
    }
    println!(
        "{:<16} {:>11.2}x {:>11.2}x   (geomean)",
        "geomean",
        geomean(&rt_tpde),
        geomean(&rt_cp)
    );

    println!("\n== Figure 7: .text size relative to LLVM-O0-like");
    println!(
        "{:<16} {:>12} {:>12}",
        "benchmark", "TPDE x86-64", "Copy-Patch"
    );
    let mut sz_tpde = Vec::new();
    let mut sz_cp = Vec::new();
    for (name, t, c, _) in &size_rows {
        println!("{:<16} {:>11.2}x {:>11.2}x", name, t, c);
        sz_tpde.push(*t);
        sz_cp.push(*c);
    }
    println!(
        "{:<16} {:>11.2}x {:>11.2}x   (geomean)",
        "geomean",
        geomean(&sz_tpde),
        geomean(&sz_cp)
    );

    // ------------------------------------------------------------------ fig 6
    println!("\n== Figure 6: time distribution inside TPDE (all workloads, -O0 style IR)");
    let mut totals = [0.0f64; 4];
    for w in &workloads {
        let module = build_workload(w, IrStyle::O0);
        let c = compile_x64(&module, &CompileOptions::default()).unwrap();
        for (i, phase) in Phase::ALL.iter().enumerate() {
            totals[i] += c.timings.total(*phase).as_secs_f64();
        }
    }
    let sum: f64 = totals.iter().sum();
    for (i, phase) in Phase::ALL.iter().enumerate() {
        println!(
            "  {:<10} {:>6.1}%",
            phase.name(),
            100.0 * totals[i] / sum.max(1e-12)
        );
    }
    println!(
        "  (the paper additionally reports the Clang front-end share, which has no analogue here)"
    );

    // ------------------------------------------------------------------ fig 8a/8b
    println!("\n== Figure 8a: compile-time speedup over the LLVM-O1-like back-end (optimized IR)");
    println!(
        "{:<16} {:>12} {:>14}",
        "benchmark", "TPDE x86-64", "vs LLVM-O0-like"
    );
    let mut sp_o1 = Vec::new();
    let mut sp_o0 = Vec::new();
    let mut rt8 = Vec::new();
    for w in &workloads {
        let tpde = measure(Backend::TpdeX64, w, IrStyle::O1, 3);
        let o1 = measure(Backend::BaselineO1, w, IrStyle::O1, 3);
        let o0 = measure(Backend::BaselineO0, w, IrStyle::O1, 3);
        assert!(tpde.correct && o1.correct && o0.correct);
        let s1 = o1.compile_time.as_secs_f64() / tpde.compile_time.as_secs_f64();
        let s0 = o0.compile_time.as_secs_f64() / tpde.compile_time.as_secs_f64();
        println!("{:<16} {:>11.2}x {:>13.2}x", w.name, s1, s0);
        sp_o1.push(s1);
        sp_o0.push(s0);
        rt8.push((
            w.name,
            o1.cycles.unwrap() as f64 / tpde.cycles.unwrap() as f64,
            o1.cycles.unwrap() as f64 / o0.cycles.unwrap() as f64,
        ));
    }
    println!(
        "{:<16} {:>11.2}x {:>13.2}x   (geomean)",
        "geomean",
        geomean(&sp_o1),
        geomean(&sp_o0)
    );

    println!("\n== Figure 8b: run-time speedup over the LLVM-O1-like back-end (optimized IR)");
    println!(
        "{:<16} {:>12} {:>14}",
        "benchmark", "TPDE x86-64", "LLVM-O0-like"
    );
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for (name, t, o) in &rt8 {
        println!("{:<16} {:>11.2}x {:>13.2}x", name, t, o);
        a.push(*t);
        b.push(*o);
    }
    println!(
        "{:<16} {:>11.2}x {:>13.2}x   (geomean)",
        "geomean",
        geomean(&a),
        geomean(&b)
    );

    // ------------------------------------------------------------------ ablations
    println!("\n== Ablations (geomean over all workloads, -O1 style IR, TPDE x86-64)");
    let configs: [(&str, CompileOptions); 4] = [
        ("default", CompileOptions::default()),
        (
            "no fixed loop regs",
            CompileOptions {
                fixed_loop_regs: false,
                ..CompileOptions::default()
            },
        ),
        (
            "no cmp/br fusion",
            CompileOptions {
                fusion: false,
                ..CompileOptions::default()
            },
        ),
        (
            "no liveness (all live)",
            CompileOptions {
                assume_all_live: true,
                ..CompileOptions::default()
            },
        ),
    ];
    let mut baseline_cycles = Vec::new();
    for (name, opts) in &configs {
        let mut cycles = Vec::new();
        let mut sizes = Vec::new();
        let mut ctime = Vec::new();
        for w in &workloads {
            let module = build_workload(w, IrStyle::O1);
            let start = Instant::now();
            let c = compile_x64(&module, opts).unwrap();
            ctime.push(start.elapsed().as_secs_f64());
            let image = tpde_core::jit::link_in_memory(&c.buf, 0x40_0000, |_| None).unwrap();
            let (_, stats) = tpde_x64emu::run_function(&image, "bench_main", &[w.input]).unwrap();
            cycles.push(stats.cycles as f64);
            sizes.push(c.text_size() as f64);
        }
        if baseline_cycles.is_empty() {
            baseline_cycles = cycles.clone();
        }
        let slowdown: Vec<f64> = cycles
            .iter()
            .zip(&baseline_cycles)
            .map(|(c, b)| c / b)
            .collect();
        println!(
            "  {:<24} run-time {:>5.2}x of default, compile {:>7.3} ms, code {:>8.0} B",
            name,
            geomean(&slowdown),
            ctime.iter().sum::<f64>() * 1000.0,
            sizes.iter().sum::<f64>()
        );
    }

    // sanity: the baselines exist and all produce correct code on one workload
    let w = scaled(&spec_workloads()[0], 1_000);
    let module = build_workload(&w, IrStyle::O0);
    assert!(compile_copy_patch(&module).is_ok());
    assert!(compile_baseline(&module, 1).is_ok());
    println!("\nAll figure data generated successfully.");
}
