//! Regenerates the paper's evaluation figures (5a, 5b, 6, 7, 8a, 8b) plus
//! the ablation studies, printing one table per figure.
//!
//! Usage: `cargo run -p tpde-bench --bin figures [--quick] [--json]`
//! (`--quick` scales down the workload inputs for a fast smoke run;
//! `--json` additionally writes the per-workload compile-time speedups to
//! `BENCH_compile.json`). The JSON file carries a `history` array with one
//! geomean entry per git commit: each run appends (or, for the same SHA,
//! replaces) its entry instead of overwriting the trajectory, so the file
//! records the compile-time speedup across PRs.

use std::time::Instant;
use tpde_bench::{geomean, measure, scaled, Backend};
use tpde_core::codegen::CompileOptions;
use tpde_core::timing::Phase;
use tpde_llvm::workloads::{build_workload, spec_workloads, IrStyle};
use tpde_llvm::{compile_baseline, compile_copy_patch, compile_x64};

/// The current git commit (short SHA), or `"unknown"` outside a checkout.
fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Extracts the per-PR history entry lines from a previously written report
/// (the lines inside the `"history": [...]` array), dropping any entry for
/// `current_sha` so a re-run replaces its own entry instead of duplicating
/// it.
fn read_history(path: &str, current_sha: &str) -> Vec<String> {
    let Ok(old) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Some(start) = old.find("\"history\": [") else {
        return Vec::new();
    };
    let sha_marker = format!("\"sha\": \"{current_sha}\"");
    old[start..]
        .lines()
        .skip(1)
        .take_while(|l| l.trim_start().starts_with('{'))
        .map(|l| l.trim().trim_end_matches(',').to_string())
        .filter(|l| !l.contains(&sha_marker))
        .collect()
}

/// Writes the machine-readable compile-time speedup report, appending this
/// run's geomeans to the per-commit history carried over from the previous
/// report.
///
/// Hand-rolled JSON (the container has no serde); numbers use enough digits
/// for diffing across PRs.
fn write_json(
    path: &str,
    quick: bool,
    rows: &[(&str, f64, f64, f64)],
    geo: (f64, f64, f64),
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let sha = git_sha();
    let mut history = read_history(path, &sha);
    history.push(format!(
        "{{\"sha\": \"{sha}\", \"quick\": {quick}, \"tpde_x64\": {:.4}, \"tpde_a64\": {:.4}, \"copy_patch\": {:.4}}}",
        geo.0, geo.1, geo.2
    ));

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"figure\": \"5a_compile_speedup_over_llvm_o0_like\",\n  \"quick\": {quick},"
    );
    out.push_str("  \"workloads\": [\n");
    for (i, (name, x64, a64, cp)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{name}\", \"tpde_x64\": {x64:.4}, \"tpde_a64\": {a64:.4}, \"copy_patch\": {cp:.4}}}{comma}"
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"geomean\": {{\"tpde_x64\": {:.4}, \"tpde_a64\": {:.4}, \"copy_patch\": {:.4}}},",
        geo.0, geo.1, geo.2
    );
    out.push_str("  \"history\": [\n");
    for (i, entry) in history.iter().enumerate() {
        let comma = if i + 1 < history.len() { "," } else { "" };
        let _ = writeln!(out, "    {entry}{comma}");
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    std::fs::write(path, out)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let json = std::env::args().any(|a| a == "--json");
    let scale = if quick { 2_000 } else { 50_000 };
    let workloads: Vec<_> = spec_workloads()
        .iter()
        .map(|w| scaled(w, w.input.min(scale)))
        .collect();

    // ------------------------------------------------------------------ fig 5a/5b/7
    println!("== Figure 5a: back-end compile-time speedup over LLVM-O0-like (unoptimized IR)");
    println!(
        "{:<16} {:>12} {:>12} {:>12}",
        "benchmark", "TPDE x86-64", "TPDE AArch64", "Copy-Patch"
    );
    let mut sp_x64 = Vec::new();
    let mut sp_a64 = Vec::new();
    let mut sp_cp = Vec::new();
    let mut json_rows: Vec<(&str, f64, f64, f64)> = Vec::new();
    let mut run_rows = Vec::new();
    let mut size_rows = Vec::new();
    for w in &workloads {
        let base = measure(Backend::BaselineO0, w, IrStyle::O0, 3);
        let tpde = measure(Backend::TpdeX64, w, IrStyle::O0, 3);
        let a64 = measure(Backend::TpdeA64, w, IrStyle::O0, 3);
        let cp = measure(Backend::CopyPatch, w, IrStyle::O0, 3);
        assert!(
            base.correct && tpde.correct && cp.correct,
            "incorrect code for {}",
            w.name
        );
        let s_x = base.compile_time.as_secs_f64() / tpde.compile_time.as_secs_f64();
        let s_a = base.compile_time.as_secs_f64() / a64.compile_time.as_secs_f64();
        let s_c = base.compile_time.as_secs_f64() / cp.compile_time.as_secs_f64();
        println!(
            "{:<16} {:>11.2}x {:>11.2}x {:>11.2}x",
            w.name, s_x, s_a, s_c
        );
        sp_x64.push(s_x);
        sp_a64.push(s_a);
        sp_cp.push(s_c);
        json_rows.push((w.name, s_x, s_a, s_c));
        run_rows.push((
            w.name,
            base.cycles.unwrap() as f64 / tpde.cycles.unwrap() as f64,
            base.cycles.unwrap() as f64 / cp.cycles.unwrap() as f64,
        ));
        size_rows.push((
            w.name,
            tpde.text_size as f64 / base.text_size as f64,
            cp.text_size as f64 / base.text_size as f64,
            a64.text_size,
        ));
    }
    println!(
        "{:<16} {:>11.2}x {:>11.2}x {:>11.2}x   (geomean)",
        "geomean",
        geomean(&sp_x64),
        geomean(&sp_a64),
        geomean(&sp_cp)
    );
    if json {
        let geo = (geomean(&sp_x64), geomean(&sp_a64), geomean(&sp_cp));
        match write_json("BENCH_compile.json", quick, &json_rows, geo) {
            Ok(()) => println!("(wrote BENCH_compile.json)"),
            Err(e) => eprintln!("failed to write BENCH_compile.json: {e}"),
        }
    }

    println!(
        "\n== Figure 5b: run-time speedup of generated code over LLVM-O0-like (emulated cycles)"
    );
    println!(
        "{:<16} {:>12} {:>12}",
        "benchmark", "TPDE x86-64", "Copy-Patch"
    );
    let mut rt_tpde = Vec::new();
    let mut rt_cp = Vec::new();
    for (name, t, c) in &run_rows {
        println!("{:<16} {:>11.2}x {:>11.2}x", name, t, c);
        rt_tpde.push(*t);
        rt_cp.push(*c);
    }
    println!(
        "{:<16} {:>11.2}x {:>11.2}x   (geomean)",
        "geomean",
        geomean(&rt_tpde),
        geomean(&rt_cp)
    );

    println!("\n== Figure 7: .text size relative to LLVM-O0-like");
    println!(
        "{:<16} {:>12} {:>12}",
        "benchmark", "TPDE x86-64", "Copy-Patch"
    );
    let mut sz_tpde = Vec::new();
    let mut sz_cp = Vec::new();
    for (name, t, c, _) in &size_rows {
        println!("{:<16} {:>11.2}x {:>11.2}x", name, t, c);
        sz_tpde.push(*t);
        sz_cp.push(*c);
    }
    println!(
        "{:<16} {:>11.2}x {:>11.2}x   (geomean)",
        "geomean",
        geomean(&sz_tpde),
        geomean(&sz_cp)
    );

    // ------------------------------------------------------------------ fig 6
    println!("\n== Figure 6: time distribution inside TPDE (all workloads, -O0 style IR)");
    let mut totals = [0.0f64; 4];
    for w in &workloads {
        let module = build_workload(w, IrStyle::O0);
        let c = compile_x64(&module, &CompileOptions::default()).unwrap();
        for (i, phase) in Phase::ALL.iter().enumerate() {
            totals[i] += c.timings.total(*phase).as_secs_f64();
        }
    }
    let sum: f64 = totals.iter().sum();
    for (i, phase) in Phase::ALL.iter().enumerate() {
        println!(
            "  {:<10} {:>6.1}%",
            phase.name(),
            100.0 * totals[i] / sum.max(1e-12)
        );
    }
    println!(
        "  (the paper additionally reports the Clang front-end share, which has no analogue here)"
    );

    // ------------------------------------------------------------------ fig 8a/8b
    println!("\n== Figure 8a: compile-time speedup over the LLVM-O1-like back-end (optimized IR)");
    println!(
        "{:<16} {:>12} {:>14}",
        "benchmark", "TPDE x86-64", "vs LLVM-O0-like"
    );
    let mut sp_o1 = Vec::new();
    let mut sp_o0 = Vec::new();
    let mut rt8 = Vec::new();
    for w in &workloads {
        let tpde = measure(Backend::TpdeX64, w, IrStyle::O1, 3);
        let o1 = measure(Backend::BaselineO1, w, IrStyle::O1, 3);
        let o0 = measure(Backend::BaselineO0, w, IrStyle::O1, 3);
        assert!(tpde.correct && o1.correct && o0.correct);
        let s1 = o1.compile_time.as_secs_f64() / tpde.compile_time.as_secs_f64();
        let s0 = o0.compile_time.as_secs_f64() / tpde.compile_time.as_secs_f64();
        println!("{:<16} {:>11.2}x {:>13.2}x", w.name, s1, s0);
        sp_o1.push(s1);
        sp_o0.push(s0);
        rt8.push((
            w.name,
            o1.cycles.unwrap() as f64 / tpde.cycles.unwrap() as f64,
            o1.cycles.unwrap() as f64 / o0.cycles.unwrap() as f64,
        ));
    }
    println!(
        "{:<16} {:>11.2}x {:>13.2}x   (geomean)",
        "geomean",
        geomean(&sp_o1),
        geomean(&sp_o0)
    );

    println!("\n== Figure 8b: run-time speedup over the LLVM-O1-like back-end (optimized IR)");
    println!(
        "{:<16} {:>12} {:>14}",
        "benchmark", "TPDE x86-64", "LLVM-O0-like"
    );
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for (name, t, o) in &rt8 {
        println!("{:<16} {:>11.2}x {:>13.2}x", name, t, o);
        a.push(*t);
        b.push(*o);
    }
    println!(
        "{:<16} {:>11.2}x {:>13.2}x   (geomean)",
        "geomean",
        geomean(&a),
        geomean(&b)
    );

    // ------------------------------------------------------------------ ablations
    println!("\n== Ablations (geomean over all workloads, -O1 style IR, TPDE x86-64)");
    let configs: [(&str, CompileOptions); 4] = [
        ("default", CompileOptions::default()),
        (
            "no fixed loop regs",
            CompileOptions {
                fixed_loop_regs: false,
                ..CompileOptions::default()
            },
        ),
        (
            "no cmp/br fusion",
            CompileOptions {
                fusion: false,
                ..CompileOptions::default()
            },
        ),
        (
            "no liveness (all live)",
            CompileOptions {
                assume_all_live: true,
                ..CompileOptions::default()
            },
        ),
    ];
    let mut baseline_cycles = Vec::new();
    for (name, opts) in &configs {
        let mut cycles = Vec::new();
        let mut sizes = Vec::new();
        let mut ctime = Vec::new();
        for w in &workloads {
            let module = build_workload(w, IrStyle::O1);
            let start = Instant::now();
            let c = compile_x64(&module, opts).unwrap();
            ctime.push(start.elapsed().as_secs_f64());
            let image = tpde_core::jit::link_in_memory(&c.buf, 0x40_0000, |_| None).unwrap();
            let (_, stats) = tpde_x64emu::run_function(&image, "bench_main", &[w.input]).unwrap();
            cycles.push(stats.cycles as f64);
            sizes.push(c.text_size() as f64);
        }
        if baseline_cycles.is_empty() {
            baseline_cycles = cycles.clone();
        }
        let slowdown: Vec<f64> = cycles
            .iter()
            .zip(&baseline_cycles)
            .map(|(c, b)| c / b)
            .collect();
        println!(
            "  {:<24} run-time {:>5.2}x of default, compile {:>7.3} ms, code {:>8.0} B",
            name,
            geomean(&slowdown),
            ctime.iter().sum::<f64>() * 1000.0,
            sizes.iter().sum::<f64>()
        );
    }

    // sanity: the baselines exist and all produce correct code on one workload
    let w = scaled(&spec_workloads()[0], 1_000);
    let module = build_workload(&w, IrStyle::O0);
    assert!(compile_copy_patch(&module).is_ok());
    assert!(compile_baseline(&module, 1).is_ok());
    println!("\nAll figure data generated successfully.");
}
