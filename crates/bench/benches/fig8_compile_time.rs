//! Criterion bench for Figure 8a: back-end compile time on optimized (-O1
//! style) IR, TPDE vs the LLVM-O1-like baseline configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpde_core::codegen::CompileOptions;
use tpde_llvm::workloads::{build_workload, spec_workloads, IrStyle};
use tpde_llvm::{compile_baseline, compile_x64};

fn bench_compile_time_o1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8a_compile_time_o1_ir");
    group.sample_size(20);
    for w in spec_workloads().iter().take(3) {
        let module = build_workload(w, IrStyle::O1);
        group.bench_with_input(BenchmarkId::new("tpde_x64", w.name), &module, |b, m| {
            b.iter(|| compile_x64(m, &CompileOptions::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("llvm_o1_like", w.name), &module, |b, m| {
            b.iter(|| compile_baseline(m, 1).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile_time_o1);
criterion_main!(benches);
