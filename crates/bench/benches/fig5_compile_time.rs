//! Criterion bench for Figure 5a: back-end compile time on unoptimized IR,
//! TPDE (x86-64 and AArch64) vs the LLVM-O0-like baseline vs copy-and-patch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpde_core::codegen::CompileOptions;
use tpde_llvm::workloads::{build_workload, spec_workloads, IrStyle};
use tpde_llvm::{compile_a64, compile_baseline, compile_copy_patch, compile_x64};

fn bench_compile_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5a_compile_time_o0_ir");
    group.sample_size(20);
    for w in spec_workloads().iter().take(3) {
        let module = build_workload(w, IrStyle::O0);
        group.bench_with_input(BenchmarkId::new("tpde_x64", w.name), &module, |b, m| {
            b.iter(|| compile_x64(m, &CompileOptions::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("tpde_a64", w.name), &module, |b, m| {
            b.iter(|| compile_a64(m, &CompileOptions::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("llvm_o0_like", w.name), &module, |b, m| {
            b.iter(|| compile_baseline(m, 0).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("copy_patch", w.name), &module, |b, m| {
            b.iter(|| compile_copy_patch(m).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile_time);
criterion_main!(benches);
