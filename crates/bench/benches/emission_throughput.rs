//! Pure-emission throughput (bytes of machine code per second) on a
//! synthetic long function, for both encoders.
//!
//! This is the regression tripwire for the `CodeBuffer` emission layer: the
//! backend benches measure the whole compile pipeline, so a slowdown in the
//! batched instruction writes, the back-branch short-circuit or the fixup
//! pool would be diluted there. Here nothing but encoder calls runs, so
//! bytes/sec tracks the emission layer directly.
//!
//! Pass `--quick` (the CI smoke mode) to scale the synthetic function down.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;
use tpde_core::codebuf::CodeBuffer;
use tpde_enc::{a64, x64};
use x64::{Alu, Cond, Gp, Mem, Shift};

/// Encodes one synthetic "function": `blocks` loop bodies of a realistic
/// load/ALU/store/compare mix, each ending in a back-branch to its own block
/// head (immediate displacement encoding) plus a short forward branch every
/// fourth block (exercising the fixup pool), then resolves and recycles the
/// function's fixups.
fn encode_x64(buf: &mut CodeBuffer, blocks: usize) -> u64 {
    buf.text_mut().clear();
    for i in 0..blocks {
        let head = buf.new_label();
        buf.bind_label(head);
        let slot = -(((i % 64) as i32 + 1) * 8);
        x64::mov_rm(buf, 8, Gp::RAX, Mem::base_disp(Gp::RBP, slot));
        x64::alu_rr(buf, Alu::Add, 8, Gp::RAX, Gp::RCX);
        x64::alu_ri(buf, Alu::Add, 8, Gp::RAX, 0x1234);
        x64::imul_rri(buf, 8, Gp::RDX, Gp::RAX, 77);
        x64::mov_mr(buf, 8, Mem::sib(Gp::RBP, Gp::RDX, 8, -16), Gp::RDX);
        x64::shift_ri(buf, Shift::Shl, 8, Gp::RDX, 3);
        x64::mov_ri(buf, 8, Gp::RSI, 0xdead_beef);
        x64::alu_rr(buf, Alu::Cmp, 8, Gp::RAX, Gp::RSI);
        if i % 4 == 3 {
            let skip = buf.new_label();
            x64::jcc_label(buf, Cond::E, skip); // forward: fixup pool
            x64::nops(buf, 2);
            buf.bind_label(skip);
        }
        x64::jcc_label(buf, Cond::NE, head); // backward: immediate encoding
    }
    x64::ret(buf);
    buf.finish_func_fixups().expect("all labels bound");
    buf.text_offset()
}

/// AArch64 flavour of the same synthetic function.
fn encode_a64(buf: &mut CodeBuffer, blocks: usize) -> u64 {
    buf.text_mut().clear();
    for i in 0..blocks {
        let head = buf.new_label();
        buf.bind_label(head);
        let slot = ((i % 64) as i32 + 1) * 8;
        a64::ldr(buf, 8, 0, a64::FP, slot);
        a64::add_rr(buf, true, 0, 0, 1);
        a64::add_imm(buf, true, 0, 0, 0x123);
        a64::madd(buf, true, 2, 0, 3, 4);
        a64::str(buf, 8, 2, a64::FP, slot);
        a64::lsl_imm(buf, true, 2, 2, 3);
        a64::mov_imm64(buf, 5, 0xdead_beef_1234);
        a64::cmp_rr(buf, true, 0, 5);
        if i % 4 == 3 {
            let skip = buf.new_label();
            a64::bcond_label(buf, a64::Cond::Eq, skip); // forward: fixup pool
            a64::nop(buf);
            buf.bind_label(skip);
        }
        a64::bcond_label(buf, a64::Cond::Ne, head); // backward: immediate
    }
    a64::ret(buf);
    buf.finish_func_fixups().expect("all labels bound");
    buf.text_offset()
}

fn bench_emission_throughput(c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--quick");
    let blocks = if quick { 2_000 } else { 50_000 };
    let mut group = c.benchmark_group("emission_throughput");
    group.sample_size(if quick { 5 } else { 20 });

    type EncodeFn = fn(&mut CodeBuffer, usize) -> u64;
    let encoders: [(&str, EncodeFn); 2] = [("x64", encode_x64), ("a64", encode_a64)];
    for (name, encode) in encoders {
        let mut buf = CodeBuffer::new();
        group.bench_with_input(BenchmarkId::new(name, blocks), &blocks, |b, &n| {
            b.iter(|| black_box(encode(&mut buf, n)))
        });

        // Reported number: steady-state bytes/sec with a reused buffer.
        let mut buf = CodeBuffer::new();
        let bytes = encode(&mut buf, blocks); // warm the buffer capacity
        let reps = if quick { 3u32 } else { 10 };
        let start = Instant::now();
        for _ in 0..reps {
            black_box(encode(&mut buf, blocks));
        }
        let per_encode = start.elapsed() / reps;
        let bytes_per_sec = bytes as f64 / per_encode.as_secs_f64();
        println!(
            "emission_throughput/{name}  {bytes} bytes in {per_encode:?}  => {:.2} MB/sec",
            bytes_per_sec / 1e6
        );
    }
    group.finish();
}

criterion_group!(benches, bench_emission_throughput);
criterion_main!(benches);
