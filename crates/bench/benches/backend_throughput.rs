//! Back-end-only compile throughput (instructions per second) on the
//! largest SPEC-like workload, for both IR styles.
//!
//! This is the allocation-regression tripwire for the adapter/analysis/
//! codegen hot path: the `figures` binary compares against the baselines,
//! but a slowdown common to all back-ends (e.g. a reintroduced per-query
//! allocation) only shows up in absolute throughput. Alongside the criterion
//! timings, the bench prints insts/sec for a session-reusing compile loop so
//! the number can be tracked across PRs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;
use tpde_core::codegen::{CompileOptions, CompileSession};
use tpde_enc::X64Target;
use tpde_llvm::backend::compile_with_session;
use tpde_llvm::compile_x64;
use tpde_llvm::workloads::{build_workload, spec_workloads, IrStyle, Workload};

/// The workload with the most instructions (at O0) — module size scales
/// with `funcs`, so this is the biggest compile job of the figure set.
fn largest_workload() -> Workload {
    spec_workloads()
        .into_iter()
        .max_by_key(|w| build_workload(w, IrStyle::O0).inst_count())
        .expect("spec workloads are non-empty")
}

fn bench_backend_throughput(c: &mut Criterion) {
    let w = largest_workload();
    let mut group = c.benchmark_group("backend_throughput");
    group.sample_size(20);
    for style in [IrStyle::O0, IrStyle::O1] {
        let module = build_workload(&w, style);
        let insts = module.inst_count();
        let style_name = match style {
            IrStyle::O0 => "o0_ir",
            IrStyle::O1 => "o1_ir",
        };
        group.bench_with_input(BenchmarkId::new(style_name, w.name), &module, |b, m| {
            b.iter(|| compile_x64(m, &CompileOptions::default()).unwrap())
        });

        // Reported number: steady-state insts/sec with a reused session
        // (the figure the acceptance criterion tracks).
        let opts = CompileOptions::default();
        let mut session = CompileSession::new();
        // warm the session buffers
        compile_with_session(&module, X64Target::new(), &opts, &mut session).unwrap();
        let reps = 20u32;
        let start = Instant::now();
        for _ in 0..reps {
            compile_with_session(&module, X64Target::new(), &opts, &mut session).unwrap();
        }
        let per_compile = start.elapsed() / reps;
        let insts_per_sec = insts as f64 / per_compile.as_secs_f64();
        println!(
            "backend_throughput/{style_name}/{}  {} insts in {:?}  => {:.2} M insts/sec",
            w.name,
            insts,
            per_compile,
            insts_per_sec / 1e6
        );
    }
    group.finish();
}

criterion_group!(benches, bench_backend_throughput);
criterion_main!(benches);
