//! End-to-end tests: encode small functions with `tpde-enc`, link them with
//! the core JIT mapper and execute them in the emulator.

use tpde_core::codebuf::{CodeBuffer, SectionKind, SymbolBinding};
use tpde_core::jit::link_in_memory;
use tpde_enc::x64::{self, Alu, Cond, Gp, Mem, Shift, Xmm};
use tpde_x64emu::{run_function, Machine};

fn build_and_run(
    name: &str,
    args: &[u64],
    emit: impl FnOnce(&mut CodeBuffer),
) -> (u64, tpde_x64emu::EmuStats) {
    let mut buf = CodeBuffer::new();
    let sym = buf.declare_symbol(name, SymbolBinding::Global, true);
    let start = buf.text_offset();
    emit(&mut buf);
    buf.define_symbol(sym, SectionKind::Text, start, buf.text_offset() - start);
    buf.resolve_fixups().unwrap();
    let image = link_in_memory(&buf, 0x40_0000, |_| None).unwrap();
    run_function(&image, name, args).expect("execution")
}

#[test]
fn add_two_arguments() {
    let (ret, stats) = build_and_run("add2", &[40, 2], |b| {
        x64::mov_rr(b, 8, Gp::RAX, Gp::RDI);
        x64::alu_rr(b, Alu::Add, 8, Gp::RAX, Gp::RSI);
        x64::ret(b);
    });
    assert_eq!(ret, 42);
    assert_eq!(stats.insts, 3);
}

#[test]
fn loop_sums_first_n_integers() {
    // sum = 0; for (i = 0; i != n; i++) sum += i; return sum
    let (ret, stats) = build_and_run("sum", &[100], |b| {
        x64::mov_ri(b, 8, Gp::RAX, 0); // sum
        x64::mov_ri(b, 8, Gp::RCX, 0); // i
        let head = b.new_label();
        let exit = b.new_label();
        b.bind_label(head);
        x64::alu_rr(b, Alu::Cmp, 8, Gp::RCX, Gp::RDI);
        x64::jcc_label(b, Cond::E, exit);
        x64::alu_rr(b, Alu::Add, 8, Gp::RAX, Gp::RCX);
        x64::alu_ri(b, Alu::Add, 8, Gp::RCX, 1);
        x64::jmp_label(b, head);
        b.bind_label(exit);
        x64::ret(b);
    });
    assert_eq!(ret, 4950);
    assert!(stats.branches >= 100);
}

#[test]
fn memory_store_load_and_stack() {
    let (ret, stats) = build_and_run("mem", &[7], |b| {
        // prologue
        x64::push_r(b, Gp::RBP);
        x64::mov_rr(b, 8, Gp::RBP, Gp::RSP);
        x64::alu_ri(b, Alu::Sub, 8, Gp::RSP, 32);
        // [rbp-8] = rdi * 3
        x64::imul_rri(b, 8, Gp::RAX, Gp::RDI, 3);
        x64::mov_mr(b, 8, Mem::base_disp(Gp::RBP, -8), Gp::RAX);
        // rax = [rbp-8] + 1
        x64::mov_rm(b, 8, Gp::RAX, Mem::base_disp(Gp::RBP, -8));
        x64::alu_ri(b, Alu::Add, 8, Gp::RAX, 1);
        // epilogue
        x64::mov_rr(b, 8, Gp::RSP, Gp::RBP);
        x64::pop_r(b, Gp::RBP);
        x64::ret(b);
    });
    assert_eq!(ret, 22);
    assert!(stats.loads >= 1 && stats.stores >= 1);
}

#[test]
fn signed_division_and_remainder() {
    let (ret, _) = build_and_run("divmod", &[(-100i64) as u64, 7], |b| {
        x64::mov_rr(b, 8, Gp::RAX, Gp::RDI);
        x64::cqo(b, 8);
        x64::idiv(b, 8, Gp::RSI);
        // return quotient*1000 + |remainder|
        x64::imul_rri(b, 8, Gp::RAX, Gp::RAX, 1000);
        x64::mov_rr(b, 8, Gp::RCX, Gp::RDX);
        x64::neg(b, 8, Gp::RCX);
        x64::alu_rr(b, Alu::Add, 8, Gp::RAX, Gp::RCX);
        x64::ret(b);
    });
    // -100 / 7 = -14 rem -2  ->  -14*1000 + 2 = -13998
    assert_eq!(ret as i64, -13998);
}

#[test]
fn unsigned_comparison_and_setcc() {
    let (ret, _) = build_and_run("below", &[3, 9], |b| {
        x64::alu_rr(b, Alu::Cmp, 8, Gp::RDI, Gp::RSI);
        x64::setcc(b, Cond::B, Gp::RAX);
        x64::movzx_rr(b, Gp::RAX, Gp::RAX, 1);
        x64::ret(b);
    });
    assert_eq!(ret, 1);
}

#[test]
fn shifts_and_partial_sizes() {
    let (ret, _) = build_and_run("shift", &[0xff00, 4], |b| {
        x64::mov_rr(b, 8, Gp::RAX, Gp::RDI);
        x64::mov_rr(b, 8, Gp::RCX, Gp::RSI);
        x64::shift_cl(b, Shift::Shr, 8, Gp::RAX);
        x64::shift_ri(b, Shift::Shl, 8, Gp::RAX, 1);
        x64::ret(b);
    });
    assert_eq!(ret, 0x1fe0);
}

#[test]
fn floating_point_arithmetic() {
    // computes (a + b) * a / b with a=6.0, b=1.5 -> 30.0, returns as int
    let (ret, _) = build_and_run("fp", &[], |b| {
        x64::mov_ri(b, 8, Gp::RAX, 6.0f64.to_bits());
        x64::movq_xr(b, Xmm(0), Gp::RAX);
        x64::mov_ri(b, 8, Gp::RAX, 1.5f64.to_bits());
        x64::movq_xr(b, Xmm(1), Gp::RAX);
        x64::fp_mov_rr(b, 8, Xmm(2), Xmm(0));
        x64::fp_arith(b, 8, 0x58, Xmm(2), Xmm(1)); // add -> 7.5
        x64::fp_arith(b, 8, 0x59, Xmm(2), Xmm(0)); // mul -> 45
        x64::fp_arith(b, 8, 0x5e, Xmm(2), Xmm(1)); // div -> 30
        x64::cvt_fp_to_int(b, 8, 8, Gp::RAX, Xmm(2));
        x64::ret(b);
    });
    assert_eq!(ret, 30);
}

#[test]
fn fp_compare_drives_branch() {
    let (ret, _) = build_and_run("fcmp", &[], |b| {
        x64::mov_ri(b, 8, Gp::RAX, 2.5f64.to_bits());
        x64::movq_xr(b, Xmm(0), Gp::RAX);
        x64::mov_ri(b, 8, Gp::RAX, 7.0f64.to_bits());
        x64::movq_xr(b, Xmm(1), Gp::RAX);
        x64::fp_ucomis(b, 8, Xmm(0), Xmm(1));
        x64::setcc(b, Cond::B, Gp::RAX); // 2.5 < 7.0 -> 1
        x64::movzx_rr(b, Gp::RAX, Gp::RAX, 1);
        x64::ret(b);
    });
    assert_eq!(ret, 1);
}

#[test]
fn call_between_generated_functions() {
    let mut buf = CodeBuffer::new();
    let callee = buf.declare_symbol("callee", SymbolBinding::Global, true);
    let caller = buf.declare_symbol("caller", SymbolBinding::Global, true);
    // callee: return rdi * 2
    let c0 = buf.text_offset();
    x64::mov_rr(&mut buf, 8, Gp::RAX, Gp::RDI);
    x64::alu_rr(&mut buf, Alu::Add, 8, Gp::RAX, Gp::RDI);
    x64::ret(&mut buf);
    buf.define_symbol(callee, SectionKind::Text, c0, buf.text_offset() - c0);
    // caller: return callee(rdi) + 1
    let c1 = buf.text_offset();
    buf.define_symbol(caller, SectionKind::Text, c1, 0);
    x64::push_r(&mut buf, Gp::RBP);
    x64::call_sym(&mut buf, callee);
    x64::alu_ri(&mut buf, Alu::Add, 8, Gp::RAX, 1);
    x64::pop_r(&mut buf, Gp::RBP);
    x64::ret(&mut buf);
    buf.resolve_fixups().unwrap();
    let image = link_in_memory(&buf, 0x40_0000, |_| None).unwrap();
    let (ret, stats) = run_function(&image, "caller", &[20]).unwrap();
    assert_eq!(ret, 41);
    assert!(stats.calls >= 1);
}

#[test]
fn external_memcpy_hostcall() {
    let mut buf = CodeBuffer::new();
    let memcpy = buf.declare_symbol("memcpy", SymbolBinding::Global, true);
    let f = buf.declare_symbol("copy8", SymbolBinding::Global, true);
    let c0 = buf.text_offset();
    buf.define_symbol(f, SectionKind::Text, c0, 0);
    // memcpy(rdi, rsi, 8); return *(u64*)rdi
    x64::push_r(&mut buf, Gp::RBP);
    x64::mov_rr(&mut buf, 8, Gp::RBP, Gp::RDI);
    x64::mov_ri(&mut buf, 8, Gp::RDX, 8);
    x64::call_sym(&mut buf, memcpy);
    x64::mov_rm(&mut buf, 8, Gp::RAX, Mem::base(Gp::RBP));
    x64::pop_r(&mut buf, Gp::RBP);
    x64::ret(&mut buf);
    buf.resolve_fixups().unwrap();
    let image = link_in_memory(&buf, 0x40_0000, |_| None).unwrap();

    let mut m = Machine::new();
    m.load_image(&image);
    // register default host calls
    // (run_function does this internally; do it manually here to pre-fill memory)
    let src = 0x5000_0000u64;
    let dst = 0x5100_0000u64;
    m.mem.write(src, 8, 0xdeadbeefcafebabe);
    // use the public helper for registration by re-creating through run_function-like path
    // simpler: run with run_function after writing memory is not possible, so register here
    tpde_x64emu_test_register(&mut m, &image);
    let addr = image.symbol_addr("copy8").unwrap();
    let ret = m.call(addr, &[dst, src]).unwrap();
    assert_eq!(ret, 0xdeadbeefcafebabe);
}

// Small shim because the hostcall registration helper is crate-private; the
// public `run_function` covers the common path, tests that need memory
// pre-population register the same functions through the public API surface.
fn tpde_x64emu_test_register(m: &mut Machine, image: &tpde_core::jit::JitImage) {
    use std::rc::Rc;
    if let Some(addr) = image.externals.get("memcpy") {
        m.register_host_fn(
            *addr,
            Rc::new(|m: &mut Machine| {
                let (dst, src, n) = (m.arg(0), m.arg(1), m.arg(2));
                let bytes = m.mem.read_bytes(src, n as usize);
                m.mem.write_bytes(dst, &bytes);
                m.set_ret(dst);
                Ok(())
            }),
        );
    }
}

#[test]
fn stats_track_spill_like_memory_traffic() {
    // identical computation, once in registers, once through the stack: the
    // stack version must report more loads/stores and more cycles.
    let (r1, s1) = build_and_run("regs", &[5, 6], |b| {
        x64::mov_rr(b, 8, Gp::RAX, Gp::RDI);
        x64::alu_rr(b, Alu::Add, 8, Gp::RAX, Gp::RSI);
        x64::ret(b);
    });
    let (r2, s2) = build_and_run("stack", &[5, 6], |b| {
        x64::push_r(b, Gp::RBP);
        x64::mov_rr(b, 8, Gp::RBP, Gp::RSP);
        x64::alu_ri(b, Alu::Sub, 8, Gp::RSP, 16);
        x64::mov_mr(b, 8, Mem::base_disp(Gp::RBP, -8), Gp::RDI);
        x64::mov_mr(b, 8, Mem::base_disp(Gp::RBP, -16), Gp::RSI);
        x64::mov_rm(b, 8, Gp::RAX, Mem::base_disp(Gp::RBP, -8));
        x64::alu_rm(b, Alu::Add, 8, Gp::RAX, Mem::base_disp(Gp::RBP, -16));
        x64::mov_rr(b, 8, Gp::RSP, Gp::RBP);
        x64::pop_r(b, Gp::RBP);
        x64::ret(b);
    });
    assert_eq!(r1, 11);
    assert_eq!(r2, 11);
    assert!(s2.cycles > s1.cycles);
    assert!(s2.loads > s1.loads);
    assert!(s2.stores > s1.stores);
}

/// Reference semantics for one ALU operation.
type AluRef = fn(u64, u64) -> u64;

#[test]
fn alu_rr_round_trips_through_decoder_for_all_encodings() {
    // Every (operation, size, register pair) combination must decode and
    // execute to the architectural result, including extended registers
    // (REX.R/REX.B) and 8-bit spl/sil access (forced REX).
    let cases: [(Alu, AluRef); 5] = [
        (Alu::Add, |a, b| a.wrapping_add(b)),
        (Alu::Sub, |a, b| a.wrapping_sub(b)),
        (Alu::And, |a, b| a & b),
        (Alu::Or, |a, b| a | b),
        (Alu::Xor, |a, b| a ^ b),
    ];
    let regs = [Gp::RAX, Gp::RSI, Gp::R8, Gp::R15];
    let (a, b) = (0x1234_5678_9abc_def0u64, 0x0fed_cba9_8765_4321u64);
    for (op, reference) in cases {
        for size in [1u32, 2, 4, 8] {
            for dst in regs {
                for src in regs {
                    if dst == src {
                        continue;
                    }
                    let (ret, _) = build_and_run("rt", &[a, b], |buf| {
                        // src first: when dst is RSI the second mov clobbers it
                        x64::mov_rr(buf, 8, src, Gp::RSI);
                        x64::mov_rr(buf, 8, dst, Gp::RDI);
                        x64::alu_rr(buf, op, size, dst, src);
                        x64::mov_rr(buf, 8, Gp::RAX, dst);
                        x64::ret(buf);
                    });
                    let mask = match size {
                        1 => 0xff,
                        2 => 0xffff,
                        4 => 0xffff_ffff,
                        _ => u64::MAX,
                    };
                    // sub-64-bit ALU ops leave the upper destination bits
                    // unchanged, except 32-bit ops which zero-extend
                    let full = reference(a, b);
                    let expected = match size {
                        4 => full & mask,
                        8 => full,
                        _ => (a & !mask) | (full & mask),
                    };
                    assert_eq!(
                        ret, expected,
                        "{op:?} size {size} {dst:?},{src:?} round-trip mismatch"
                    );
                }
            }
        }
    }
}
