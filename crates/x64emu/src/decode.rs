//! Instruction decoding and execution for the emitted x86-64 subset.

use crate::cpu::{EmuError, Machine};

#[derive(Debug, Clone, Copy)]
enum RmOperand {
    Reg(u8),
    Mem(u64),
}

struct ModRm {
    reg: u8,
    rm: RmOperand,
}

fn mask(size: u32) -> u64 {
    match size {
        1 => 0xff,
        2 => 0xffff,
        4 => 0xffff_ffff,
        _ => u64::MAX,
    }
}

fn sign_bit(v: u64, size: u32) -> bool {
    v >> (size * 8 - 1) & 1 != 0
}

fn sext(v: u64, size: u32) -> i64 {
    match size {
        1 => v as u8 as i8 as i64,
        2 => v as u16 as i16 as i64,
        4 => v as u32 as i32 as i64,
        _ => v as i64,
    }
}

fn parity(v: u64) -> bool {
    (v as u8).count_ones().is_multiple_of(2)
}

impl Machine {
    fn fetch8(&mut self, p: &mut u64) -> u8 {
        let b = self.mem.read_u8(*p);
        *p += 1;
        b
    }

    fn fetch32(&mut self, p: &mut u64) -> u32 {
        let v = self.mem.read(*p, 4) as u32;
        *p += 4;
        v
    }

    fn fetch64(&mut self, p: &mut u64) -> u64 {
        let v = self.mem.read(*p, 8);
        *p += 8;
        v
    }

    fn read_reg(&self, idx: u8, size: u32) -> u64 {
        self.regs[idx as usize] & mask(size)
    }

    fn write_reg(&mut self, idx: u8, size: u32, val: u64) {
        let i = idx as usize;
        match size {
            1 => self.regs[i] = (self.regs[i] & !0xff) | (val & 0xff),
            2 => self.regs[i] = (self.regs[i] & !0xffff) | (val & 0xffff),
            4 => self.regs[i] = val & 0xffff_ffff,
            _ => self.regs[i] = val,
        }
    }

    fn decode_modrm(&mut self, p: &mut u64, rex: u8) -> ModRm {
        let byte = self.fetch8(p);
        let md = byte >> 6;
        let mut reg = (byte >> 3) & 7;
        let mut rm = byte & 7;
        if rex & 4 != 0 {
            reg += 8;
        }
        if md == 3 {
            if rex & 1 != 0 {
                rm += 8;
            }
            return ModRm {
                reg,
                rm: RmOperand::Reg(rm),
            };
        }
        // memory operand
        let mut base: Option<u8> = None;
        let mut index: Option<(u8, u8)> = None;
        if rm == 4 {
            // SIB
            let sib = self.fetch8(p);
            let ss = sib >> 6;
            let mut idx = (sib >> 3) & 7;
            let mut b = sib & 7;
            if rex & 2 != 0 {
                idx += 8;
            }
            if rex & 1 != 0 {
                b += 8;
            }
            if idx != 4 {
                index = Some((idx, 1 << ss));
            }
            if !(md == 0 && (b & 7) == 5) {
                base = Some(b);
            }
        } else {
            let mut b = rm;
            if rex & 1 != 0 {
                b += 8;
            }
            if !(md == 0 && rm == 5) {
                base = Some(b);
            }
            // mod=00 rm=101 would be RIP-relative; not emitted by our encoders
        }
        let disp: i64 = match md {
            0 => {
                if base.is_none() {
                    self.fetch32(p) as i32 as i64
                } else {
                    0
                }
            }
            1 => self.fetch8(p) as i8 as i64,
            _ => self.fetch32(p) as i32 as i64,
        };
        let mut addr = disp as u64;
        if let Some(b) = base {
            addr = addr.wrapping_add(self.regs[b as usize]);
        }
        if let Some((i, scale)) = index {
            addr = addr.wrapping_add(self.regs[i as usize].wrapping_mul(scale as u64));
        }
        ModRm {
            reg,
            rm: RmOperand::Mem(addr),
        }
    }

    fn read_rm(&mut self, rm: RmOperand, size: u32) -> u64 {
        match rm {
            RmOperand::Reg(r) => self.read_reg(r, size),
            RmOperand::Mem(a) => {
                self.stats_mut().loads += 1;
                self.stats_mut().cycles += 1;
                self.mem.read(a, size)
            }
        }
    }

    fn write_rm(&mut self, rm: RmOperand, size: u32, val: u64) {
        match rm {
            RmOperand::Reg(r) => self.write_reg(r, size, val),
            RmOperand::Mem(a) => {
                self.stats_mut().stores += 1;
                self.stats_mut().cycles += 1;
                self.mem.write(a, size, val);
            }
        }
    }

    fn set_flags_logic(&mut self, res: u64, size: u32) {
        let res = res & mask(size);
        self.flags.cf = false;
        self.flags.of = false;
        self.flags.zf = res == 0;
        self.flags.sf = sign_bit(res, size);
        self.flags.pf = parity(res);
    }

    fn set_flags_add(&mut self, a: u64, b: u64, size: u32) -> u64 {
        let m = mask(size);
        let (a, b) = (a & m, b & m);
        let res = a.wrapping_add(b) & m;
        self.flags.cf = res < a;
        self.flags.zf = res == 0;
        self.flags.sf = sign_bit(res, size);
        self.flags.of =
            !(sign_bit(a, size) ^ sign_bit(b, size)) & (sign_bit(a, size) ^ sign_bit(res, size));
        self.flags.pf = parity(res);
        res
    }

    fn set_flags_sub(&mut self, a: u64, b: u64, size: u32) -> u64 {
        let m = mask(size);
        let (a, b) = (a & m, b & m);
        let res = a.wrapping_sub(b) & m;
        self.flags.cf = a < b;
        self.flags.zf = res == 0;
        self.flags.sf = sign_bit(res, size);
        self.flags.of =
            (sign_bit(a, size) ^ sign_bit(b, size)) & (sign_bit(a, size) ^ sign_bit(res, size));
        self.flags.pf = parity(res);
        res
    }

    fn alu(&mut self, op: u8, a: u64, b: u64, size: u32) -> (u64, bool) {
        // returns (result, writeback)
        match op {
            0 => (self.set_flags_add(a, b, size), true),
            1 => {
                let r = (a | b) & mask(size);
                self.set_flags_logic(r, size);
                (r, true)
            }
            2 => {
                let c = self.flags.cf as u64;
                let r = self.set_flags_add(a, b.wrapping_add(c), size);
                (r, true)
            }
            3 => {
                let c = self.flags.cf as u64;
                let r = self.set_flags_sub(a, b.wrapping_add(c), size);
                (r, true)
            }
            4 => {
                let r = (a & b) & mask(size);
                self.set_flags_logic(r, size);
                (r, true)
            }
            5 => (self.set_flags_sub(a, b, size), true),
            6 => {
                let r = (a ^ b) & mask(size);
                self.set_flags_logic(r, size);
                (r, true)
            }
            _ => (self.set_flags_sub(a, b, size), false), // cmp
        }
    }

    fn cond(&self, cc: u8) -> bool {
        let f = &self.flags;
        match cc {
            0x0 => f.of,
            0x1 => !f.of,
            0x2 => f.cf,
            0x3 => !f.cf,
            0x4 => f.zf,
            0x5 => !f.zf,
            0x6 => f.cf || f.zf,
            0x7 => !f.cf && !f.zf,
            0x8 => f.sf,
            0x9 => !f.sf,
            0xa => f.pf,
            0xb => !f.pf,
            0xc => f.sf != f.of,
            0xd => f.sf == f.of,
            0xe => f.zf || (f.sf != f.of),
            _ => !f.zf && (f.sf == f.of),
        }
    }

    fn xmm_f64(&self, idx: u8) -> f64 {
        f64::from_bits(self.xmm[idx as usize])
    }

    fn xmm_f32(&self, idx: u8) -> f32 {
        f32::from_bits(self.xmm[idx as usize] as u32)
    }

    fn read_rm_xmm(&mut self, rm: RmOperand, size: u32) -> u64 {
        match rm {
            RmOperand::Reg(r) => self.xmm[r as usize] & mask(size),
            RmOperand::Mem(a) => {
                self.stats_mut().loads += 1;
                self.stats_mut().cycles += 1;
                self.mem.read(a, size)
            }
        }
    }

    /// Decodes and executes one instruction.
    pub(crate) fn step(&mut self) -> Result<(), EmuError> {
        let start = self.rip;
        let mut p = self.rip;
        let mut has66 = false;
        let mut rep: u8 = 0;
        let mut rex: u8 = 0;
        loop {
            let b = self.mem.read_u8(p);
            match b {
                0x66 => has66 = true,
                0xf2 | 0xf3 => rep = b,
                0x40..=0x4f => rex = b,
                _ => break,
            }
            p += 1;
        }
        let w = rex & 8 != 0;
        let osize: u32 = if w {
            8
        } else if has66 {
            2
        } else {
            4
        };
        self.stats_mut().insts += 1;
        self.stats_mut().cycles += 1;
        let op = self.fetch8(&mut p);
        match op {
            0x90 => {} // nop
            0x50..=0x57 => {
                let r = (op - 0x50) + if rex & 1 != 0 { 8 } else { 0 };
                let v = self.regs[r as usize];
                self.push(v);
                self.stats_mut().stores += 1;
            }
            0x58..=0x5f => {
                let r = (op - 0x58) + if rex & 1 != 0 { 8 } else { 0 };
                let v = self.pop();
                self.regs[r as usize] = v;
                self.stats_mut().loads += 1;
            }
            // mov
            0x88 | 0x89 => {
                let size = if op == 0x88 { 1 } else { osize };
                let m = self.decode_modrm(&mut p, rex);
                let v = self.read_reg(m.reg, size);
                self.write_rm(m.rm, size, v);
            }
            0x8a | 0x8b => {
                let size = if op == 0x8a { 1 } else { osize };
                let m = self.decode_modrm(&mut p, rex);
                let v = self.read_rm(m.rm, size);
                self.write_reg(m.reg, size, v);
            }
            0x8d => {
                let m = self.decode_modrm(&mut p, rex);
                if let RmOperand::Mem(a) = m.rm {
                    self.write_reg(m.reg, 8, a);
                } else {
                    return Err(EmuError::Decode {
                        rip: start,
                        bytes: self.mem.read_bytes(start, 4),
                    });
                }
            }
            0x63 => {
                let m = self.decode_modrm(&mut p, rex);
                let v = self.read_rm(m.rm, 4);
                self.write_reg(m.reg, 8, v as u32 as i32 as i64 as u64);
            }
            0xb8..=0xbf => {
                let r = (op - 0xb8) + if rex & 1 != 0 { 8 } else { 0 };
                if w {
                    let v = self.fetch64(&mut p);
                    self.write_reg(r, 8, v);
                } else {
                    let v = self.fetch32(&mut p) as u64;
                    self.write_reg(r, 4, v);
                }
            }
            0xc6 | 0xc7 => {
                let size = if op == 0xc6 { 1 } else { osize };
                let m = self.decode_modrm(&mut p, rex);
                let imm: u64 = match size {
                    1 => self.fetch8(&mut p) as u64,
                    2 => {
                        let v = self.mem.read(p, 2);
                        p += 2;
                        v
                    }
                    _ => sext(self.fetch32(&mut p) as u64, 4) as u64,
                };
                self.write_rm(m.rm, size, imm);
            }
            // ALU r/m forms
            b if b < 0x40 && (b & 7) <= 3 => {
                let aluop = b >> 3;
                let form = b & 3;
                let size = if form == 0 || form == 2 { 1 } else { osize };
                let m = self.decode_modrm(&mut p, rex);
                match form {
                    0 | 1 => {
                        let a = self.read_rm(m.rm, size);
                        let bb = self.read_reg(m.reg, size);
                        let (r, wb) = self.alu(aluop, a, bb, size);
                        if wb {
                            self.write_rm(m.rm, size, r);
                        }
                    }
                    _ => {
                        let a = self.read_reg(m.reg, size);
                        let bb = self.read_rm(m.rm, size);
                        let (r, wb) = self.alu(aluop, a, bb, size);
                        if wb {
                            self.write_reg(m.reg, size, r);
                        }
                    }
                }
            }
            0x80 | 0x81 | 0x83 => {
                let size = if op == 0x80 { 1 } else { osize };
                let m = self.decode_modrm(&mut p, rex);
                let imm: u64 = match op {
                    0x80 => self.fetch8(&mut p) as u64,
                    0x83 => sext(self.fetch8(&mut p) as u64, 1) as u64,
                    _ => {
                        if size == 2 {
                            let v = self.mem.read(p, 2);
                            p += 2;
                            v
                        } else {
                            sext(self.fetch32(&mut p) as u64, 4) as u64
                        }
                    }
                };
                let a = self.read_rm(m.rm, size);
                let (r, wb) = self.alu(m.reg & 7, a, imm, size);
                if wb {
                    self.write_rm(m.rm, size, r);
                }
            }
            0x84 | 0x85 => {
                let size = if op == 0x84 { 1 } else { osize };
                let m = self.decode_modrm(&mut p, rex);
                let a = self.read_rm(m.rm, size);
                let b = self.read_reg(m.reg, size);
                self.set_flags_logic(a & b, size);
            }
            0xf6 | 0xf7 => {
                let size = if op == 0xf6 { 1 } else { osize };
                let m = self.decode_modrm(&mut p, rex);
                match m.reg & 7 {
                    0 => {
                        let a = self.read_rm(m.rm, size);
                        let imm = if size == 1 {
                            self.fetch8(&mut p) as u64
                        } else {
                            sext(self.fetch32(&mut p) as u64, 4) as u64
                        };
                        self.set_flags_logic(a & imm, size);
                    }
                    2 => {
                        let a = self.read_rm(m.rm, size);
                        self.write_rm(m.rm, size, !a);
                    }
                    3 => {
                        let a = self.read_rm(m.rm, size);
                        let r = self.set_flags_sub(0, a, size);
                        self.write_rm(m.rm, size, r);
                    }
                    4 | 5 => {
                        // widening multiply into rdx:rax
                        self.stats_mut().cycles += 2;
                        let a = self.read_reg(0, size);
                        let b = self.read_rm(m.rm, size);
                        let (lo, hi) = if m.reg & 7 == 4 {
                            let prod = (a as u128) * (b as u128);
                            (prod as u64, (prod >> 64) as u64)
                        } else {
                            let prod = (sext(a, size) as i128) * (sext(b, size) as i128);
                            (prod as u64, (prod >> 64) as u64)
                        };
                        if size == 8 {
                            self.regs[0] = lo;
                            self.regs[2] = hi;
                        } else {
                            let bits = size * 8;
                            self.write_reg(0, size, lo);
                            self.write_reg(2, size, if size == 8 { hi } else { lo >> bits });
                        }
                    }
                    6 | 7 => {
                        self.stats_mut().cycles += 19;
                        let divisor = self.read_rm(m.rm, size);
                        if divisor & mask(size) == 0 {
                            return Err(EmuError::Fault("division by zero".into()));
                        }
                        if m.reg & 7 == 6 {
                            let dividend = if size == 8 {
                                ((self.regs[2] as u128) << 64) | self.regs[0] as u128
                            } else {
                                (((self.read_reg(2, size)) as u128) << (size * 8))
                                    | self.read_reg(0, size) as u128
                            };
                            let q = dividend / (divisor & mask(size)) as u128;
                            let r = dividend % (divisor & mask(size)) as u128;
                            self.write_reg(0, size, q as u64);
                            self.write_reg(2, size, r as u64);
                        } else {
                            let dividend = if size == 8 {
                                (((self.regs[2] as u128) << 64) | self.regs[0] as u128) as i128
                            } else {
                                let lo = self.read_reg(0, size) as u128;
                                let hi = self.read_reg(2, size) as u128;
                                let v = (hi << (size * 8)) | lo;
                                // sign extend from 2*size*8 bits
                                let shift = 128 - 2 * size * 8;
                                ((v << shift) as i128) >> shift
                            };
                            let dv = sext(divisor, size) as i128;
                            let q = dividend.wrapping_div(dv);
                            let r = dividend.wrapping_rem(dv);
                            self.write_reg(0, size, q as u64);
                            self.write_reg(2, size, r as u64);
                        }
                    }
                    _ => {
                        return Err(EmuError::Decode {
                            rip: start,
                            bytes: self.mem.read_bytes(start, 4),
                        })
                    }
                }
            }
            0x69 | 0x6b => {
                self.stats_mut().cycles += 2;
                let m = self.decode_modrm(&mut p, rex);
                let a = self.read_rm(m.rm, osize);
                let imm = if op == 0x6b {
                    sext(self.fetch8(&mut p) as u64, 1)
                } else {
                    sext(self.fetch32(&mut p) as u64, 4)
                };
                let r = (sext(a, osize)).wrapping_mul(imm) as u64;
                self.write_reg(m.reg, osize, r);
            }
            0xc0 | 0xc1 | 0xd0 | 0xd1 | 0xd2 | 0xd3 => {
                let size = if op == 0xc0 || op == 0xd0 || op == 0xd2 {
                    1
                } else {
                    osize
                };
                let m = self.decode_modrm(&mut p, rex);
                let amt = match op {
                    0xc0 | 0xc1 => self.fetch8(&mut p) as u32,
                    0xd0 | 0xd1 => 1,
                    _ => (self.regs[1] & 0xff) as u32, // cl
                } % (size * 8).max(1);
                let a = self.read_rm(m.rm, size);
                let r = match m.reg & 7 {
                    4 => a.wrapping_shl(amt),
                    5 => (a & mask(size)).wrapping_shr(amt),
                    7 => (sext(a, size) >> amt) as u64,
                    0 => (a & mask(size)).rotate_left(amt), // approximation for rol within size
                    1 => (a & mask(size)).rotate_right(amt),
                    _ => {
                        return Err(EmuError::Decode {
                            rip: start,
                            bytes: self.mem.read_bytes(start, 4),
                        })
                    }
                } & mask(size);
                if amt != 0 {
                    self.set_flags_logic(r, size);
                }
                self.write_rm(m.rm, size, r);
            }
            0x98 => {
                // cwde / cdqe
                if w {
                    self.regs[0] = self.regs[0] as u32 as i32 as i64 as u64;
                } else {
                    self.write_reg(0, 4, self.regs[0] as u16 as i16 as i32 as u32 as u64);
                }
            }
            0x99 => {
                // cdq / cqo
                if w {
                    self.regs[2] = if (self.regs[0] as i64) < 0 {
                        u64::MAX
                    } else {
                        0
                    };
                } else {
                    let v = if (self.regs[0] as u32 as i32) < 0 {
                        0xffff_ffff
                    } else {
                        0
                    };
                    self.write_reg(2, 4, v);
                }
            }
            0xe8 => {
                let rel = self.fetch32(&mut p) as i32 as i64;
                self.push(p);
                self.stats_mut().stores += 1;
                self.stats_mut().calls += 1;
                self.stats_mut().cycles += 2;
                self.rip = (p as i64 + rel) as u64;
                return Ok(());
            }
            0xe9 => {
                let rel = self.fetch32(&mut p) as i32 as i64;
                self.stats_mut().branches += 1;
                self.rip = (p as i64 + rel) as u64;
                return Ok(());
            }
            0xeb => {
                let rel = self.fetch8(&mut p) as i8 as i64;
                self.stats_mut().branches += 1;
                self.rip = (p as i64 + rel) as u64;
                return Ok(());
            }
            0xc3 => {
                self.rip = self.pop();
                self.stats_mut().loads += 1;
                self.stats_mut().cycles += 1;
                return Ok(());
            }
            0xff => {
                let m = self.decode_modrm(&mut p, rex);
                match m.reg & 7 {
                    2 => {
                        let target = self.read_rm(m.rm, 8);
                        self.push(p);
                        self.stats_mut().stores += 1;
                        self.stats_mut().calls += 1;
                        self.stats_mut().cycles += 2;
                        self.rip = target;
                        return Ok(());
                    }
                    4 => {
                        let target = self.read_rm(m.rm, 8);
                        self.stats_mut().branches += 1;
                        self.rip = target;
                        return Ok(());
                    }
                    _ => {
                        return Err(EmuError::Decode {
                            rip: start,
                            bytes: self.mem.read_bytes(start, 4),
                        })
                    }
                }
            }
            0x0f => {
                let op2 = self.fetch8(&mut p);
                match op2 {
                    0x80..=0x8f => {
                        let rel = self.fetch32(&mut p) as i32 as i64;
                        self.stats_mut().branches += 1;
                        if self.cond(op2 & 0xf) {
                            self.rip = (p as i64 + rel) as u64;
                            return Ok(());
                        }
                    }
                    0x90..=0x9f => {
                        let m = self.decode_modrm(&mut p, rex);
                        let v = self.cond(op2 & 0xf) as u64;
                        self.write_rm(m.rm, 1, v);
                    }
                    0x40..=0x4f => {
                        let m = self.decode_modrm(&mut p, rex);
                        if self.cond(op2 & 0xf) {
                            let v = self.read_rm(m.rm, osize);
                            self.write_reg(m.reg, osize, v);
                        } else if let RmOperand::Mem(_) = m.rm {
                            self.stats_mut().loads += 1;
                        }
                    }
                    0xb6 | 0xb7 => {
                        let from = if op2 == 0xb6 { 1 } else { 2 };
                        let m = self.decode_modrm(&mut p, rex);
                        let v = self.read_rm(m.rm, from);
                        self.write_reg(m.reg, if w { 8 } else { 4 }, v & mask(from));
                    }
                    0xbe | 0xbf => {
                        let from = if op2 == 0xbe { 1 } else { 2 };
                        let m = self.decode_modrm(&mut p, rex);
                        let v = self.read_rm(m.rm, from);
                        self.write_reg(m.reg, if w { 8 } else { 4 }, sext(v, from) as u64);
                    }
                    0xaf => {
                        self.stats_mut().cycles += 2;
                        let m = self.decode_modrm(&mut p, rex);
                        let a = self.read_reg(m.reg, osize);
                        let b = self.read_rm(m.rm, osize);
                        let r = sext(a, osize).wrapping_mul(sext(b, osize)) as u64;
                        self.write_reg(m.reg, osize, r);
                    }
                    // ---- SSE scalar ----
                    0x10 | 0x11 | 0x2a | 0x2c | 0x2e | 0x51 | 0x57 | 0x58 | 0x59 | 0x5a | 0x5c
                    | 0x5e | 0x6e | 0x7e => {
                        self.sse_op(op2, &mut p, rex, rep, has66, w, start)?;
                    }
                    _ => {
                        return Err(EmuError::Decode {
                            rip: start,
                            bytes: self.mem.read_bytes(start, 4),
                        })
                    }
                }
            }
            _ => {
                return Err(EmuError::Decode {
                    rip: start,
                    bytes: self.mem.read_bytes(start, 4),
                })
            }
        }
        self.rip = p;
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn sse_op(
        &mut self,
        op2: u8,
        p: &mut u64,
        rex: u8,
        rep: u8,
        has66: bool,
        w: bool,
        start: u64,
    ) -> Result<(), EmuError> {
        let is_f32 = rep == 0xf3;
        let fsize: u32 = if is_f32 { 4 } else { 8 };
        let m = self.decode_modrm(p, rex);
        self.stats_mut().cycles += 1;
        match op2 {
            0x10 => {
                // movsd/movss xmm, xmm/mem
                let v = self.read_rm_xmm(m.rm, fsize);
                if let RmOperand::Mem(_) = m.rm {
                    self.xmm[m.reg as usize] = v;
                } else {
                    // register move only replaces the low bits
                    let old = self.xmm[m.reg as usize];
                    self.xmm[m.reg as usize] = (old & !mask(fsize)) | v;
                }
            }
            0x11 => {
                let v = self.xmm[m.reg as usize] & mask(fsize);
                match m.rm {
                    RmOperand::Reg(r) => {
                        let old = self.xmm[r as usize];
                        self.xmm[r as usize] = (old & !mask(fsize)) | v;
                    }
                    RmOperand::Mem(a) => {
                        self.stats_mut().stores += 1;
                        self.mem.write(a, fsize, v);
                    }
                }
            }
            0x2a => {
                // cvtsi2sd/ss xmm, r/m
                let int_size = if w { 8 } else { 4 };
                let v = self.read_rm(m.rm, int_size);
                let i = sext(v, int_size);
                let bits = if is_f32 {
                    (i as f32).to_bits() as u64
                } else {
                    (i as f64).to_bits()
                };
                self.xmm[m.reg as usize] = bits;
            }
            0x2c => {
                // cvttsd2si/cvttss2si r, xmm
                let src = match m.rm {
                    RmOperand::Reg(r) => self.xmm[r as usize],
                    RmOperand::Mem(a) => self.mem.read(a, fsize),
                };
                let f = if is_f32 {
                    f32::from_bits(src as u32) as f64
                } else {
                    f64::from_bits(src)
                };
                let int_size = if w { 8 } else { 4 };
                let v = if int_size == 8 {
                    f as i64 as u64
                } else {
                    f as i32 as u32 as u64
                };
                self.write_reg(m.reg, int_size, v);
            }
            0x2e => {
                // ucomisd (66) / ucomiss (none)
                let dsize = if has66 { 8 } else { 4 };
                let a_bits = self.xmm[m.reg as usize];
                let b_bits = self.read_rm_xmm(m.rm, dsize);
                let (a, b) = if dsize == 8 {
                    (f64::from_bits(a_bits), f64::from_bits(b_bits))
                } else {
                    (
                        f32::from_bits(a_bits as u32) as f64,
                        f32::from_bits(b_bits as u32) as f64,
                    )
                };
                self.flags.of = false;
                self.flags.sf = false;
                if a.is_nan() || b.is_nan() {
                    self.flags.zf = true;
                    self.flags.pf = true;
                    self.flags.cf = true;
                } else {
                    self.flags.pf = false;
                    self.flags.zf = a == b;
                    self.flags.cf = a < b;
                }
            }
            0x51 | 0x58 | 0x59 | 0x5c | 0x5e => {
                self.stats_mut().cycles += if op2 == 0x5e { 14 } else { 2 };
                let b_bits = self.read_rm_xmm(m.rm, fsize);
                if is_f32 {
                    let a = self.xmm_f32(m.reg);
                    let b = f32::from_bits(b_bits as u32);
                    let r = match op2 {
                        0x51 => b.sqrt(),
                        0x58 => a + b,
                        0x59 => a * b,
                        0x5c => a - b,
                        _ => a / b,
                    };
                    let old = self.xmm[m.reg as usize];
                    self.xmm[m.reg as usize] = (old & !0xffff_ffff) | r.to_bits() as u64;
                } else {
                    let a = self.xmm_f64(m.reg);
                    let b = f64::from_bits(b_bits);
                    let r = match op2 {
                        0x51 => b.sqrt(),
                        0x58 => a + b,
                        0x59 => a * b,
                        0x5c => a - b,
                        _ => a / b,
                    };
                    self.xmm[m.reg as usize] = r.to_bits();
                }
            }
            0x57 => {
                // xorps/xorpd (only used to zero or negate; xor the low 64 bits)
                let b_bits = match m.rm {
                    RmOperand::Reg(r) => self.xmm[r as usize],
                    RmOperand::Mem(a) => self.mem.read(a, 8),
                };
                self.xmm[m.reg as usize] ^= b_bits;
            }
            0x5a => {
                // cvtsd2ss (f2) / cvtss2sd (f3)
                let b_bits = self.read_rm_xmm(m.rm, fsize);
                if rep == 0xf2 {
                    let v = f64::from_bits(b_bits) as f32;
                    let old = self.xmm[m.reg as usize];
                    self.xmm[m.reg as usize] = (old & !0xffff_ffff) | v.to_bits() as u64;
                } else {
                    let v = f32::from_bits(b_bits as u32) as f64;
                    self.xmm[m.reg as usize] = v.to_bits();
                }
            }
            0x6e => {
                // movq xmm, r/m64
                let v = self.read_rm(m.rm, if w { 8 } else { 4 });
                self.xmm[m.reg as usize] = v;
            }
            0x7e => {
                // movq r/m64, xmm
                let v = self.xmm[m.reg as usize];
                self.write_rm(m.rm, if w { 8 } else { 4 }, v);
            }
            _ => {
                return Err(EmuError::Decode {
                    rip: start,
                    bytes: self.mem.read_bytes(start, 4),
                })
            }
        }
        self.rip = *p;
        // the caller sets rip again, keep consistent by restoring p-based flow
        Ok(())
    }
}
