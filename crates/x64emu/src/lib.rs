//! # tpde-x64emu
//!
//! A user-mode x86-64 emulator for the machine-code subset emitted by the
//! TPDE back-ends and baselines.
//!
//! The paper evaluates run-time performance on real hardware (SPEC CPU2017 on
//! a Xeon and an Apple M1). This reproduction instead executes the generated
//! code in this emulator, which decodes the actual machine-code bytes,
//! maintains architectural state (GP registers, SSE registers, flags, memory)
//! and reports deterministic dynamic execution statistics (instruction
//! counts, memory traffic, and a simple weighted cycle model). Relative
//! run-time differences between back-ends are driven by exactly the effects
//! the paper discusses — extra moves, spills and reloads — so the *shape* of
//! the run-time comparison is preserved while staying portable and
//! deterministic.
//!
//! Calls to unresolved external symbols (placed at
//! [`tpde_core::jit::EXTERNAL_CALLOUT_BASE`]) are dispatched to registered
//! host functions; a small libc subset (`malloc`, `memcpy`, `memset`, …) is
//! provided out of the box.
//!
//! ```
//! use tpde_core::codegen::CompileOptions;
//! use tpde_core::jit::link_in_memory;
//! use tpde_llvm::ir::{BinOp, FunctionBuilder, Module, Type};
//!
//! let mut m = Module::new();
//! let mut b = FunctionBuilder::new("double_it", &[Type::I64], Type::I64);
//! let two = b.iconst(Type::I64, 2);
//! let res = b.bin(BinOp::Mul, Type::I64, b.arg(0), two);
//! b.ret(Some(res));
//! m.add_function(b.build());
//!
//! let compiled = tpde_llvm::backend::compile_x64(&m, &CompileOptions::default()).unwrap();
//! let image = link_in_memory(&compiled.buf, 0x40_0000, |_| None).unwrap();
//! let (ret, stats) = tpde_x64emu::run_function(&image, "double_it", &[21]).unwrap();
//! assert_eq!(ret, 42);
//! assert!(stats.insts > 0);
//! ```

mod cpu;
mod decode;
mod hostcalls;
mod memory;

pub use cpu::{EmuError, EmuStats, Machine, HOST_FN_NAMES};
pub use hostcalls::register_default_hostcalls;
pub use memory::Memory;

use tpde_core::jit::JitImage;

/// Convenience helper: creates a machine, loads `image`, registers the
/// default host calls and runs `symbol` with up to six integer arguments.
///
/// Returns the integer return value (`rax`) and the execution statistics.
///
/// # Errors
///
/// Returns an [`EmuError`] if the symbol is missing or execution faults.
pub fn run_function(
    image: &JitImage,
    symbol: &str,
    args: &[u64],
) -> Result<(u64, EmuStats), EmuError> {
    let mut m = Machine::new();
    m.load_image(image);
    hostcalls::register_default_hostcalls(&mut m, image);
    let addr = image
        .symbol_addr(symbol)
        .ok_or_else(|| EmuError::Fault(format!("unknown symbol {symbol}")))?;
    let ret = m.call(addr, args)?;
    Ok((ret, m.stats().clone()))
}
