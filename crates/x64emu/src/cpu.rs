//! Machine state, run loop and host-call dispatch.

use crate::memory::Memory;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use tpde_core::codebuf::SectionKind;
use tpde_core::jit::{JitImage, EXTERNAL_CALLOUT_BASE, EXTERNAL_CALLOUT_END};

/// Magic return address used to detect that the top-level call returned.
pub(crate) const RETURN_MAGIC: u64 = 0x0dea_d10c_0000_0000;
/// Base of the emulated stack.
const STACK_TOP: u64 = 0x7ffd_0000_0000;
/// Base of the emulated heap (grown by the `malloc` host call).
const HEAP_BASE: u64 = 0x6000_0000_0000;
/// Default instruction budget before execution is aborted.
const DEFAULT_MAX_INSTS: u64 = 2_000_000_000;

/// Errors produced during emulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// An instruction could not be decoded.
    Decode { rip: u64, bytes: Vec<u8> },
    /// A guest fault (e.g. division by zero, explicit trap, missing symbol).
    Fault(String),
    /// The instruction budget was exhausted.
    Timeout,
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::Decode { rip, bytes } => {
                write!(f, "cannot decode instruction at {rip:#x}: {bytes:02x?}")
            }
            EmuError::Fault(msg) => write!(f, "guest fault: {msg}"),
            EmuError::Timeout => write!(f, "instruction budget exhausted"),
        }
    }
}

impl std::error::Error for EmuError {}

/// Dynamic execution statistics; the run-time metric of the benchmarks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EmuStats {
    /// Executed instructions.
    pub insts: u64,
    /// Memory loads.
    pub loads: u64,
    /// Memory stores.
    pub stores: u64,
    /// Taken + not-taken branches.
    pub branches: u64,
    /// Calls (including host call-outs).
    pub calls: u64,
    /// Weighted cycle estimate (simple cost model: memory 2, mul 3, div 20,
    /// everything else 1).
    pub cycles: u64,
}

/// CPU flags tracked by the emulator.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Flags {
    pub zf: bool,
    pub sf: bool,
    pub cf: bool,
    pub of: bool,
    pub pf: bool,
}

/// A registered host function: reads its arguments from the machine
/// (SysV registers / stack) and writes results to `rax`/`xmm0`.
pub type HostFn = Rc<dyn Fn(&mut Machine) -> Result<(), EmuError>>;

/// Names of the host functions registered by default (the emulator's libc
/// subset).
pub const HOST_FN_NAMES: &[&str] = &[
    "malloc", "calloc", "free", "memcpy", "memset", "memmove", "memcmp", "strlen", "abort", "puts",
    "putchar", "exit",
];

/// The emulated machine.
pub struct Machine {
    /// General-purpose registers, indexed by architectural number.
    pub regs: [u64; 16],
    /// SSE registers (low 64 bits only; the back-ends only use scalars).
    pub xmm: [u64; 16],
    /// Instruction pointer.
    pub rip: u64,
    pub(crate) flags: Flags,
    /// Guest memory.
    pub mem: Memory,
    stats: EmuStats,
    host_fns: HashMap<u64, HostFn>,
    pub(crate) heap_next: u64,
    /// Maximum number of instructions [`Machine::run`] will execute.
    pub max_insts: u64,
}

impl Default for Machine {
    fn default() -> Self {
        Self::new()
    }
}

impl Machine {
    /// Creates an empty machine.
    pub fn new() -> Machine {
        Machine {
            regs: [0; 16],
            xmm: [0; 16],
            rip: 0,
            flags: Flags::default(),
            mem: Memory::new(),
            stats: EmuStats::default(),
            host_fns: HashMap::new(),
            heap_next: HEAP_BASE,
            max_insts: DEFAULT_MAX_INSTS,
        }
    }

    /// Loads all sections of a linked image into guest memory.
    pub fn load_image(&mut self, image: &JitImage) {
        for (kind, addr, data) in &image.sections {
            if *kind == SectionKind::Bss {
                // memory is zero-initialized by construction
                continue;
            }
            self.mem.write_bytes(*addr, data);
        }
    }

    /// Registers a host function at a guest address (typically one of the
    /// image's external call-out addresses).
    pub fn register_host_fn(&mut self, addr: u64, f: HostFn) {
        self.host_fns.insert(addr, f);
    }

    /// Patches the call slot of function `f` in `image` to `target` and
    /// writes the patch through to guest memory (the machine executes from
    /// its own copy of the image), keeping both views consistent. The write
    /// is the single aligned 8-byte store of
    /// [`JitImage::patch_call_slot`]; returns `Ok(false)` when the slot
    /// already held `target` (idempotent re-patch, nothing written).
    ///
    /// # Errors
    ///
    /// Propagates the patch API's errors (no tier tables, index out of
    /// range) as an [`EmuError::Fault`].
    pub fn apply_call_patch(
        &mut self,
        image: &mut JitImage,
        f: u32,
        target: u64,
    ) -> Result<bool, EmuError> {
        let patched = image
            .patch_call_slot(f, target)
            .map_err(|e| EmuError::Fault(e.to_string()))?;
        if patched {
            let addr = image.call_slot_addr(f).expect("slot exists after patch");
            self.mem.write(addr, 8, target);
        }
        Ok(patched)
    }

    /// Execution statistics accumulated so far.
    pub fn stats(&self) -> &EmuStats {
        &self.stats
    }

    /// Mutable access to the statistics (used by the decoder).
    pub(crate) fn stats_mut(&mut self) -> &mut EmuStats {
        &mut self.stats
    }

    /// Resets statistics (state and memory are kept).
    pub fn reset_stats(&mut self) {
        self.stats = EmuStats::default();
    }

    /// Allocates `size` bytes of guest heap (bump allocation).
    pub fn heap_alloc(&mut self, size: u64, align: u64) -> u64 {
        let align = align.max(16);
        self.heap_next = (self.heap_next + align - 1) & !(align - 1);
        let addr = self.heap_next;
        self.heap_next += size.max(1);
        addr
    }

    /// Reads the `n`-th integer argument per the SysV calling convention
    /// (only register arguments are supported for host calls).
    pub fn arg(&self, n: usize) -> u64 {
        const ARGS: [usize; 6] = [7, 6, 2, 1, 8, 9]; // rdi rsi rdx rcx r8 r9
        self.regs[ARGS[n]]
    }

    /// Sets the integer return value (`rax`).
    pub fn set_ret(&mut self, v: u64) {
        self.regs[0] = v;
    }

    pub(crate) fn push(&mut self, v: u64) {
        self.regs[4] = self.regs[4].wrapping_sub(8);
        self.mem.write(self.regs[4], 8, v);
    }

    pub(crate) fn pop(&mut self) -> u64 {
        let v = self.mem.read(self.regs[4], 8);
        self.regs[4] = self.regs[4].wrapping_add(8);
        v
    }

    /// Calls the function at `addr` with up to six integer arguments and runs
    /// it to completion, returning `rax`.
    ///
    /// # Errors
    ///
    /// Propagates decode errors, guest faults and instruction-budget
    /// exhaustion.
    pub fn call(&mut self, addr: u64, args: &[u64]) -> Result<u64, EmuError> {
        assert!(args.len() <= 6, "host-side call supports at most 6 args");
        const ARGS: [usize; 6] = [7, 6, 2, 1, 8, 9];
        for (i, a) in args.iter().enumerate() {
            self.regs[ARGS[i]] = *a;
        }
        self.regs[4] = STACK_TOP - 4096; // rsp, 16-byte aligned
        self.push(RETURN_MAGIC);
        self.rip = addr;
        self.run()?;
        Ok(self.regs[0])
    }

    /// Calls a function whose first arguments include doubles (placed in
    /// xmm0..) — used by FP-heavy workloads.
    pub fn call_fp(
        &mut self,
        addr: u64,
        int_args: &[u64],
        fp_args: &[f64],
    ) -> Result<u64, EmuError> {
        for (i, a) in fp_args.iter().enumerate().take(8) {
            self.xmm[i] = a.to_bits();
        }
        self.call(addr, int_args)
    }

    /// Runs until the outermost frame returns (to the magic return address).
    pub fn run(&mut self) -> Result<(), EmuError> {
        let budget = self.max_insts;
        let start = self.stats.insts;
        loop {
            if self.rip == RETURN_MAGIC {
                return Ok(());
            }
            if let Some(f) = self.host_fns.get(&self.rip).cloned() {
                f(self)?;
                self.stats.calls += 1;
                // simulate `ret`
                self.rip = self.pop();
                continue;
            }
            if (EXTERNAL_CALLOUT_BASE..EXTERNAL_CALLOUT_END).contains(&self.rip) {
                return Err(EmuError::Fault(format!(
                    "call to unregistered host function at {:#x}",
                    self.rip
                )));
            }
            self.step()?;
            if self.stats.insts - start > budget {
                return Err(EmuError::Timeout);
            }
        }
    }
}
