//! Default host call-outs: a minimal libc subset for generated code.

use crate::cpu::{EmuError, Machine};
use std::rc::Rc;
use tpde_core::jit::JitImage;

/// Registers the default host functions for every external symbol of the
/// image whose name the emulator knows. Unknown externals stay unregistered
/// and fault if called, which keeps silent miscompiles visible.
pub fn register_default_hostcalls(m: &mut Machine, image: &JitImage) {
    for (name, addr) in &image.externals {
        let addr = *addr;
        match name.as_str() {
            "malloc" => m.register_host_fn(
                addr,
                Rc::new(|m: &mut Machine| {
                    let size = m.arg(0);
                    let p = m.heap_alloc(size, 16);
                    m.set_ret(p);
                    Ok(())
                }),
            ),
            "calloc" => m.register_host_fn(
                addr,
                Rc::new(|m: &mut Machine| {
                    let n = m.arg(0);
                    let sz = m.arg(1);
                    let p = m.heap_alloc(n.saturating_mul(sz), 16);
                    m.set_ret(p);
                    Ok(())
                }),
            ),
            "free" => m.register_host_fn(addr, Rc::new(|_m: &mut Machine| Ok(()))),
            "memcpy" | "memmove" => m.register_host_fn(
                addr,
                Rc::new(|m: &mut Machine| {
                    let (dst, src, n) = (m.arg(0), m.arg(1), m.arg(2));
                    let bytes = m.mem.read_bytes(src, n as usize);
                    m.mem.write_bytes(dst, &bytes);
                    m.set_ret(dst);
                    Ok(())
                }),
            ),
            "memset" => m.register_host_fn(
                addr,
                Rc::new(|m: &mut Machine| {
                    let (dst, c, n) = (m.arg(0), m.arg(1) as u8, m.arg(2));
                    for i in 0..n {
                        m.mem.write_u8(dst + i, c);
                    }
                    m.set_ret(dst);
                    Ok(())
                }),
            ),
            "memcmp" => m.register_host_fn(
                addr,
                Rc::new(|m: &mut Machine| {
                    let (a, b, n) = (m.arg(0), m.arg(1), m.arg(2));
                    let av = m.mem.read_bytes(a, n as usize);
                    let bv = m.mem.read_bytes(b, n as usize);
                    let r = match av.cmp(&bv) {
                        std::cmp::Ordering::Less => -1i64,
                        std::cmp::Ordering::Equal => 0,
                        std::cmp::Ordering::Greater => 1,
                    };
                    m.set_ret(r as u64);
                    Ok(())
                }),
            ),
            "strlen" => m.register_host_fn(
                addr,
                Rc::new(|m: &mut Machine| {
                    let mut p = m.arg(0);
                    let mut n = 0u64;
                    while m.mem.read_u8(p) != 0 {
                        p += 1;
                        n += 1;
                    }
                    m.set_ret(n);
                    Ok(())
                }),
            ),
            "puts" | "putchar" => m.register_host_fn(
                addr,
                Rc::new(|m: &mut Machine| {
                    m.set_ret(0);
                    Ok(())
                }),
            ),
            "abort" | "exit" | "__trap" => m.register_host_fn(
                addr,
                Rc::new(|_m: &mut Machine| {
                    Err(EmuError::Fault("guest called abort/exit/trap".into()))
                }),
            ),
            _ => {}
        }
    }
}
