//! Sparse paged memory for the emulator.

use std::collections::HashMap;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

/// Byte-addressable sparse memory. Pages are allocated on first write (and
/// on first read, returning zeroes), so guest code can use a large stack and
/// heap without the emulator reserving host memory up front.
#[derive(Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
}

impl Memory {
    /// Creates empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE as usize] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]))
    }

    /// Reads a single byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr & (PAGE_SIZE - 1)) as usize],
            None => 0,
        }
    }

    /// Writes a single byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let off = (addr & (PAGE_SIZE - 1)) as usize;
        self.page_mut(addr)[off] = value;
    }

    /// Reads `n <= 8` bytes little-endian, zero-extended to 64 bits.
    pub fn read(&self, addr: u64, n: u32) -> u64 {
        let mut v = 0u64;
        for i in 0..n as u64 {
            v |= (self.read_u8(addr + i) as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `n <= 8` bytes of `value` little-endian.
    pub fn write(&mut self, addr: u64, n: u32, value: u64) {
        for i in 0..n as u64 {
            self.write_u8(addr + i, (value >> (8 * i)) as u8);
        }
    }

    /// Copies a byte slice into memory.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Reads `len` bytes into a fresh vector.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr + i as u64)).collect()
    }

    /// Number of resident pages (for tests / diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip_across_pages() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE - 3; // straddles a page boundary
        m.write(addr, 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read(addr, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.read(addr, 4), 0x5566_7788);
        assert_eq!(m.read_u8(addr), 0x88);
        assert!(m.resident_pages() >= 2);
    }

    #[test]
    fn unmapped_memory_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read(0xdead_beef, 8), 0);
    }

    #[test]
    fn byte_slice_helpers() {
        let mut m = Memory::new();
        m.write_bytes(0x1000, b"hello");
        assert_eq!(m.read_bytes(0x1000, 5), b"hello");
    }
}
