//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build container has no network access to crates.io, so this vendored
//! crate provides the small API subset used by the `tpde-bench` targets:
//! [`Criterion`], [`BenchmarkId`], benchmark groups with `sample_size` /
//! `bench_with_input` / `finish`, `Bencher::iter`, [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Timing is plain
//! wall-clock (median of the sampled runs) printed to stdout; there is no
//! statistical analysis, plotting or baseline comparison.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier for one benchmark within a group: a function name plus a
/// parameter rendered with `Display`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id of the form `function_name/parameter`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-iteration timings.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup run so lazily-initialized state does not pollute the
        // first sample.
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `routine` with `input`, reporting under `id`.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: self.sample_size,
        };
        routine(&mut bencher, input);
        let median = bencher.median();
        println!("{}/{}  median {:?}", self.name, id, median);
        self
    }

    /// Finishes the group (reporting already happened incrementally).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts (and ignores) command-line configuration, for API parity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a new benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Final analysis hook; a no-op in this stand-in.
    pub fn final_summary(&mut self) {}
}

/// Defines a function running a list of benchmark targets, like
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Defines `main` running the given benchmark groups, like
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default().configure_from_args();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("count", 1), &2u64, |b, x| {
            b.iter(|| {
                runs += 1;
                black_box(*x * 2)
            })
        });
        group.finish();
        // one warmup + sample_size timed iterations
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "w1").to_string(), "f/w1");
    }
}
